//! The token oracle Θ-ADT (Definitions 3.5 and 3.6, Figure 6).
//!
//! The oracle exposes two operations:
//!
//! * `getToken(b_h, b_ℓ)` — invoked by a process with merit `α_i`; the
//!   oracle pops the first cell of the tape associated with `α_i` and, if it
//!   contains `tkn`, returns the candidate block stamped with a token for
//!   parent `b_h` (the block `b_ℓ^{tkn_h}`, valid by construction).
//! * `consumeToken(b_ℓ^{tkn_h})` — inserts the block into the set `K[h]`
//!   provided `|K[h]| < k` and the token has not been consumed before;
//!   in every case it returns the current contents of `K[h]`.
//!
//! [`FrugalOracle`] implements Θ_F,k for finite `k`; [`ProdigalOracle`]
//! implements Θ_P, which the paper defines as Θ_F with `k = ∞`.

use std::collections::{HashMap, HashSet};

use btadt_types::{Block, BlockId};

use crate::merit::MeritTable;
use crate::tape::{Cell, Tape};

/// Dense index of a parent slot `K[h]` inside a [`SlotArena`].
///
/// Mirrors the `NodeIdx` arena indexing of `btadt_types::BlockTree`: parent
/// identifiers are interned once and all per-parent bookkeeping lives in a
/// dense `Vec` addressed by this index.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SlotIdx(pub u32);

/// The oracle's `K[]` array: per-parent sets of consumed blocks, stored in
/// a dense slab with a `BlockId → SlotIdx` interning layer, mirroring the
/// `NodeIdx` arena of the BlockTree.  Lookups still hash the parent id once;
/// what the slab buys is stable dense indices (usable as keys by callers)
/// and contiguous slot storage instead of a map of scattered vectors.
#[derive(Clone, Debug, Default)]
pub struct SlotArena {
    index: HashMap<BlockId, SlotIdx>,
    slots: Vec<Vec<Block>>,
}

impl SlotArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        SlotArena::default()
    }

    /// The slot index for a parent, interning it on first use.
    pub fn intern(&mut self, parent: BlockId) -> SlotIdx {
        if let Some(&idx) = self.index.get(&parent) {
            return idx;
        }
        let idx = SlotIdx(u32::try_from(self.slots.len()).expect("slot arena capacity exceeded"));
        self.index.insert(parent, idx);
        self.slots.push(Vec::new());
        idx
    }

    /// The slot index of a parent, if it was ever consumed against.
    pub fn idx_of(&self, parent: BlockId) -> Option<SlotIdx> {
        self.index.get(&parent).copied()
    }

    /// Mutable access to `K[h]` for the given parent, interning it.
    pub fn slot_mut(&mut self, parent: BlockId) -> &mut Vec<Block> {
        let idx = self.intern(parent);
        &mut self.slots[idx.0 as usize]
    }

    /// The contents of `K[h]`, empty for parents never consumed against.
    pub fn slot(&self, parent: BlockId) -> &[Block] {
        match self.idx_of(parent) {
            Some(idx) => &self.slots[idx.0 as usize],
            None => &[],
        }
    }
}

/// Configuration of a token oracle.
#[derive(Clone, Copy, Debug)]
pub struct OracleConfig {
    /// Seed of the pseudo-random tapes (deterministic reproduction).
    pub seed: u64,
    /// Scaling factor from merit to token probability:
    /// `p_{α_i} = clamp(scale · α_i, min_probability, 1)` for `α_i > 0`.
    pub probability_scale: f64,
    /// Floor applied to positive-merit processes so that `p_{α_i} > 0`
    /// always holds, as the paper requires.
    pub min_probability: f64,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            seed: 0,
            probability_scale: 1.0,
            min_probability: 1e-3,
        }
    }
}

impl OracleConfig {
    /// Config with an explicit seed and default probabilities.
    pub fn seeded(seed: u64) -> Self {
        OracleConfig {
            seed,
            ..Default::default()
        }
    }

    /// Token probability for a process with the given merit.
    pub fn probability_for(&self, merit: f64) -> f64 {
        if merit <= 0.0 {
            0.0
        } else {
            (self.probability_scale * merit).clamp(self.min_probability, 1.0)
        }
    }
}

/// A block stamped with a token for its parent: the `b_ℓ^{tkn_h}` object.
///
/// Grants are produced only by the oracle, so holding a grant is the proof
/// that the wrapped block belongs to `B'` (the valid blocks).
#[derive(Clone, Debug, PartialEq)]
pub struct TokenGrant {
    /// The parent block the token refers to (`b_h`).
    pub parent: BlockId,
    /// The stamped block (`b_ℓ`), now valid by construction.
    pub block: Block,
    /// Serial number of the token; each token can be consumed at most once.
    pub serial: u64,
}

/// Result of a `consumeToken` operation.
#[derive(Clone, Debug, PartialEq)]
pub struct ConsumeOutcome {
    /// `true` iff the block was inserted into `K[h]` by this call.
    pub accepted: bool,
    /// The contents of `K[h]` after the call (what the Θ-ADT's output
    /// function `δ` returns: `get(K, h)`).
    pub slot: Vec<Block>,
}

/// Statistics kept by an oracle, used by the benchmark harness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OracleStats {
    /// Number of `getToken` invocations.
    pub get_token_calls: u64,
    /// Number of `getToken` invocations that returned a grant.
    pub tokens_granted: u64,
    /// Number of `consumeToken` invocations.
    pub consume_calls: u64,
    /// Number of `consumeToken` invocations that inserted into `K[h]`.
    pub tokens_consumed: u64,
}

/// The token-oracle interface shared by Θ_P and Θ_F,k.
pub trait TokenOracle: Send {
    /// `getToken(b_h ← parent, b_ℓ ← candidate)` invoked by process
    /// `requester`.  Pops one cell of the requester's tape; returns a grant
    /// iff the cell contained `tkn`.
    fn get_token(
        &mut self,
        requester: usize,
        parent: &Block,
        candidate: Block,
    ) -> Option<TokenGrant>;

    /// `consumeToken(b_ℓ^{tkn_h})`.
    fn consume_token(&mut self, grant: &TokenGrant) -> ConsumeOutcome;

    /// The fork bound `k` (`None` for the prodigal oracle's `k = ∞`).
    fn fork_bound(&self) -> Option<usize>;

    /// Current contents of `K[h]` for the given parent.
    fn slot(&self, parent: BlockId) -> Vec<Block>;

    /// Usage statistics.
    fn stats(&self) -> OracleStats;

    /// Human-readable oracle name.
    fn name(&self) -> &'static str;

    /// Repeatedly invokes `get_token` until a grant is produced (the
    /// `τ_b ∘ τ_a*` refinement of the append operation, Definition 3.7).
    /// Returns the grant and the number of `getToken` invocations needed.
    ///
    /// The candidate block is rebuilt identically at each attempt; only a
    /// positive-merit requester terminates (the paper assumes
    /// `p_{α_i} > 0`).
    fn get_token_until_granted(
        &mut self,
        requester: usize,
        parent: &Block,
        candidate: Block,
    ) -> (TokenGrant, u64) {
        let mut attempts = 0;
        loop {
            attempts += 1;
            if let Some(grant) = self.get_token(requester, parent, candidate.clone()) {
                return (grant, attempts);
            }
        }
    }
}

/// The frugal oracle Θ_F,k: at most `k` tokens can be consumed per parent
/// block.
#[derive(Debug)]
pub struct FrugalOracle {
    config: OracleConfig,
    merits: MeritTable,
    k: Option<usize>,
    tapes: HashMap<usize, Tape>,
    slots: SlotArena,
    consumed_serials: HashSet<u64>,
    next_serial: u64,
    stats: OracleStats,
}

impl FrugalOracle {
    /// Creates a frugal oracle with fork bound `k ≥ 1`.
    pub fn new(k: usize, merits: MeritTable, config: OracleConfig) -> Self {
        assert!(k >= 1, "the frugal oracle requires k ≥ 1");
        Self::with_bound(Some(k), merits, config)
    }

    /// Internal constructor shared with the prodigal oracle.
    fn with_bound(k: Option<usize>, merits: MeritTable, config: OracleConfig) -> Self {
        FrugalOracle {
            config,
            merits,
            k,
            tapes: HashMap::new(),
            slots: SlotArena::new(),
            consumed_serials: HashSet::new(),
            next_serial: 1,
            stats: OracleStats::default(),
        }
    }

    /// Number of processes known to the oracle.
    pub fn processes(&self) -> usize {
        self.merits.len()
    }

    /// The merit table used by the oracle.
    pub fn merits(&self) -> &MeritTable {
        &self.merits
    }

    fn tape_for(&mut self, requester: usize) -> &mut Tape {
        let config = self.config;
        let merit = self.merits.merit(requester).0;
        self.tapes.entry(requester).or_insert_with(|| {
            Tape::new(config.seed, requester as u64, config.probability_for(merit))
        })
    }
}

impl TokenOracle for FrugalOracle {
    fn get_token(
        &mut self,
        requester: usize,
        parent: &Block,
        candidate: Block,
    ) -> Option<TokenGrant> {
        self.stats.get_token_calls += 1;
        let cell = self.tape_for(requester).pop();
        if cell == Cell::Token {
            self.stats.tokens_granted += 1;
            let serial = self.next_serial;
            self.next_serial += 1;
            Some(TokenGrant {
                parent: parent.id,
                block: candidate,
                serial,
            })
        } else {
            None
        }
    }

    fn consume_token(&mut self, grant: &TokenGrant) -> ConsumeOutcome {
        self.stats.consume_calls += 1;
        let slot = self.slots.slot_mut(grant.parent);
        let under_bound = match self.k {
            Some(k) => slot.len() < k,
            None => true,
        };
        let fresh = !self.consumed_serials.contains(&grant.serial);
        let accepted = under_bound && fresh;
        if accepted {
            self.consumed_serials.insert(grant.serial);
            slot.push(grant.block.clone());
            self.stats.tokens_consumed += 1;
        }
        ConsumeOutcome {
            accepted,
            slot: slot.clone(),
        }
    }

    fn fork_bound(&self) -> Option<usize> {
        self.k
    }

    fn slot(&self, parent: BlockId) -> Vec<Block> {
        self.slots.slot(parent).to_vec()
    }

    fn stats(&self) -> OracleStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        match self.k {
            Some(1) => "frugal(k=1)",
            Some(_) => "frugal(k)",
            None => "prodigal",
        }
    }
}

/// The prodigal oracle Θ_P: Θ_F with `k = ∞` (Definition 3.6).
#[derive(Debug)]
pub struct ProdigalOracle {
    inner: FrugalOracle,
}

impl ProdigalOracle {
    /// Creates a prodigal oracle.
    pub fn new(merits: MeritTable, config: OracleConfig) -> Self {
        ProdigalOracle {
            inner: FrugalOracle::with_bound(None, merits, config),
        }
    }

    /// Number of processes known to the oracle.
    pub fn processes(&self) -> usize {
        self.inner.processes()
    }
}

impl TokenOracle for ProdigalOracle {
    fn get_token(
        &mut self,
        requester: usize,
        parent: &Block,
        candidate: Block,
    ) -> Option<TokenGrant> {
        self.inner.get_token(requester, parent, candidate)
    }

    fn consume_token(&mut self, grant: &TokenGrant) -> ConsumeOutcome {
        self.inner.consume_token(grant)
    }

    fn fork_bound(&self) -> Option<usize> {
        None
    }

    fn slot(&self, parent: BlockId) -> Vec<Block> {
        self.inner.slot(parent)
    }

    fn stats(&self) -> OracleStats {
        self.inner.stats()
    }

    fn name(&self) -> &'static str {
        "prodigal"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btadt_types::BlockBuilder;

    fn always_granting_config() -> OracleConfig {
        OracleConfig {
            seed: 1,
            probability_scale: 1e9, // clamps to probability 1
            min_probability: 1.0,
        }
    }

    fn candidate(nonce: u64) -> (Block, Block) {
        let genesis = Block::genesis();
        let block = BlockBuilder::new(&genesis).nonce(nonce).build();
        (genesis, block)
    }

    #[test]
    fn get_token_grants_iff_tape_cell_is_token() {
        let merits = MeritTable::uniform(2);
        // probability 0.5: over many calls we must see both grants and refusals
        let config = OracleConfig {
            seed: 7,
            probability_scale: 0.5 * 2.0, // 0.5 for merit 0.5
            min_probability: 1e-6,
        };
        let mut oracle = FrugalOracle::new(1, merits, config);
        let (genesis, block) = candidate(1);
        let mut granted = 0;
        let mut refused = 0;
        for _ in 0..200 {
            match oracle.get_token(0, &genesis, block.clone()) {
                Some(_) => granted += 1,
                None => refused += 1,
            }
        }
        assert!(granted > 0 && refused > 0);
        assert_eq!(oracle.stats().get_token_calls, 200);
        assert_eq!(oracle.stats().tokens_granted, granted);
    }

    #[test]
    fn zero_merit_process_never_gets_a_token() {
        let merits = MeritTable::consortium(3, &[0]);
        let mut oracle = FrugalOracle::new(1, merits, OracleConfig::seeded(3));
        let (genesis, block) = candidate(1);
        for _ in 0..300 {
            assert!(oracle.get_token(2, &genesis, block.clone()).is_none());
        }
    }

    #[test]
    fn frugal_oracle_consumes_at_most_k_tokens_per_parent() {
        let merits = MeritTable::uniform(1);
        let mut oracle = FrugalOracle::new(2, merits, always_granting_config());
        let (genesis, _) = candidate(0);
        let mut accepted = 0;
        for nonce in 0..10 {
            let block = BlockBuilder::new(&genesis).nonce(nonce).build();
            let grant = oracle.get_token(0, &genesis, block).unwrap();
            let outcome = oracle.consume_token(&grant);
            if outcome.accepted {
                accepted += 1;
            }
            assert!(outcome.slot.len() <= 2);
        }
        assert_eq!(accepted, 2);
        assert_eq!(oracle.slot(genesis.id).len(), 2);
        assert_eq!(oracle.stats().tokens_consumed, 2);
        assert_eq!(oracle.stats().consume_calls, 10);
    }

    #[test]
    fn prodigal_oracle_accepts_unboundedly_many_tokens() {
        let merits = MeritTable::uniform(1);
        let mut oracle = ProdigalOracle::new(merits, always_granting_config());
        let (genesis, _) = candidate(0);
        for nonce in 0..50 {
            let block = BlockBuilder::new(&genesis).nonce(nonce).build();
            let grant = oracle.get_token(0, &genesis, block).unwrap();
            assert!(oracle.consume_token(&grant).accepted);
        }
        assert_eq!(oracle.slot(genesis.id).len(), 50);
        assert_eq!(oracle.fork_bound(), None);
        assert_eq!(oracle.name(), "prodigal");
    }

    #[test]
    fn each_token_is_consumed_at_most_once() {
        let merits = MeritTable::uniform(1);
        let mut oracle = FrugalOracle::new(10, merits, always_granting_config());
        let (genesis, block) = candidate(1);
        let grant = oracle.get_token(0, &genesis, block).unwrap();
        assert!(oracle.consume_token(&grant).accepted);
        let second = oracle.consume_token(&grant);
        assert!(!second.accepted, "a token can be consumed at most once");
        assert_eq!(second.slot.len(), 1);
    }

    #[test]
    fn consume_returns_slot_contents_even_when_rejected() {
        let merits = MeritTable::uniform(1);
        let mut oracle = FrugalOracle::new(1, merits, always_granting_config());
        let (genesis, _) = candidate(0);
        let b1 = BlockBuilder::new(&genesis).nonce(1).build();
        let b2 = BlockBuilder::new(&genesis).nonce(2).build();
        let g1 = oracle.get_token(0, &genesis, b1.clone()).unwrap();
        let g2 = oracle.get_token(0, &genesis, b2).unwrap();
        assert!(oracle.consume_token(&g1).accepted);
        let outcome = oracle.consume_token(&g2);
        assert!(!outcome.accepted);
        assert_eq!(outcome.slot, vec![b1]);
    }

    #[test]
    fn get_token_until_granted_counts_attempts() {
        let merits = MeritTable::uniform(1);
        let config = OracleConfig {
            seed: 11,
            probability_scale: 0.2, // p = 0.2
            min_probability: 1e-6,
        };
        let mut oracle = FrugalOracle::new(1, merits, config);
        let (genesis, block) = candidate(5);
        let (grant, attempts) = oracle.get_token_until_granted(0, &genesis, block.clone());
        assert!(attempts >= 1);
        assert_eq!(grant.block, block);
        assert_eq!(oracle.stats().get_token_calls, attempts);
    }

    #[test]
    fn slots_are_per_parent() {
        let merits = MeritTable::uniform(1);
        let mut oracle = FrugalOracle::new(1, merits, always_granting_config());
        let genesis = Block::genesis();
        let a = BlockBuilder::new(&genesis).nonce(1).build();
        let ga = oracle.get_token(0, &genesis, a.clone()).unwrap();
        assert!(oracle.consume_token(&ga).accepted);
        // A token for a *different* parent (a) is still consumable even with k=1.
        let b = BlockBuilder::new(&a).nonce(2).build();
        let gb = oracle.get_token_until_granted(0, &a, b).0;
        assert!(oracle.consume_token(&gb).accepted);
        assert_eq!(oracle.slot(genesis.id).len(), 1);
        assert_eq!(oracle.slot(a.id).len(), 1);
    }

    #[test]
    fn oracle_names_reflect_fork_bound() {
        let merits = MeritTable::uniform(1);
        assert_eq!(
            FrugalOracle::new(1, merits.clone(), OracleConfig::default()).name(),
            "frugal(k=1)"
        );
        assert_eq!(
            FrugalOracle::new(3, merits.clone(), OracleConfig::default()).name(),
            "frugal(k)"
        );
        assert_eq!(
            ProdigalOracle::new(merits, OracleConfig::default()).name(),
            "prodigal"
        );
    }

    #[test]
    #[should_panic(expected = "k ≥ 1")]
    fn frugal_requires_positive_k() {
        FrugalOracle::new(0, MeritTable::uniform(1), OracleConfig::default());
    }

    #[test]
    fn probability_for_clamps_and_floors() {
        let config = OracleConfig::default();
        assert_eq!(config.probability_for(0.0), 0.0);
        assert!(config.probability_for(1e-9) >= config.min_probability);
        assert_eq!(config.probability_for(5.0), 1.0);
    }
}
