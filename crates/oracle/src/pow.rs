//! A simulated hash-puzzle proof-of-work backend.
//!
//! The paper abstracts proof-of-work into the oracle's pseudo-random tapes.
//! To show that the abstraction faithfully stands in for an actual hash
//! puzzle (DESIGN.md substitution table), [`SimulatedPow`] implements the
//! same [`TokenOracle`] interface by *solving* a puzzle: a `getToken` call
//! draws a nonce, hashes `(parent, candidate, nonce)` with the same
//! structural FNV hash used for block ids, and grants a token iff the hash
//! falls below a per-merit target.  The success probability per call is
//! `target/2^64 ≈ p_{α_i}`, i.e. the tape's Bernoulli parameter — the two
//! backends are interchangeable, which the `ablation_oracle_backend` bench
//! demonstrates.

use std::collections::HashSet;

use btadt_types::{Block, BlockId};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

use crate::merit::MeritTable;
use crate::oracle::{
    ConsumeOutcome, OracleConfig, OracleStats, SlotArena, TokenGrant, TokenOracle,
};

/// Proof-of-work flavoured token oracle: `getToken` succeeds iff a freshly
/// drawn nonce solves a difficulty puzzle calibrated to the requester's
/// merit.
#[derive(Debug)]
pub struct SimulatedPow {
    config: OracleConfig,
    merits: MeritTable,
    k: Option<usize>,
    rng: ChaCha8Rng,
    slots: SlotArena,
    consumed_serials: HashSet<u64>,
    next_serial: u64,
    stats: OracleStats,
}

impl SimulatedPow {
    /// Creates a PoW oracle with an optional fork bound (`None` = prodigal
    /// behaviour, `Some(k)` = frugal behaviour).
    pub fn new(k: Option<usize>, merits: MeritTable, config: OracleConfig) -> Self {
        if let Some(k) = k {
            assert!(k >= 1, "the fork bound must be at least 1");
        }
        SimulatedPow {
            rng: ChaCha8Rng::seed_from_u64(config.seed ^ 0x9e37_79b9_7f4a_7c15),
            config,
            merits,
            k,
            slots: SlotArena::new(),
            consumed_serials: HashSet::new(),
            next_serial: 1,
            stats: OracleStats::default(),
        }
    }

    /// The puzzle target for a given merit: a hash below this value solves
    /// the puzzle.
    fn target_for(&self, merit: f64) -> u64 {
        let p = self.config.probability_for(merit);
        if p >= 1.0 {
            u64::MAX
        } else {
            (p * u64::MAX as f64) as u64
        }
    }

    /// One puzzle attempt: hash (parent, candidate id, nonce) and compare to
    /// the target.
    fn attempt(&mut self, parent: BlockId, candidate: &Block, merit: f64) -> Option<u64> {
        let nonce: u64 = self.rng.gen();
        let digest = Block::compute_id(
            parent,
            candidate.producer,
            nonce,
            candidate.work,
            &candidate.payload,
        );
        if digest.0 <= self.target_for(merit) {
            Some(nonce)
        } else {
            None
        }
    }
}

impl TokenOracle for SimulatedPow {
    fn get_token(
        &mut self,
        requester: usize,
        parent: &Block,
        candidate: Block,
    ) -> Option<TokenGrant> {
        self.stats.get_token_calls += 1;
        let merit = self.merits.merit(requester).0;
        if merit <= 0.0 {
            return None;
        }
        self.attempt(parent.id, &candidate, merit).map(|_nonce| {
            self.stats.tokens_granted += 1;
            let serial = self.next_serial;
            self.next_serial += 1;
            TokenGrant {
                parent: parent.id,
                block: candidate,
                serial,
            }
        })
    }

    fn consume_token(&mut self, grant: &TokenGrant) -> ConsumeOutcome {
        self.stats.consume_calls += 1;
        let slot = self.slots.slot_mut(grant.parent);
        let under_bound = match self.k {
            Some(k) => slot.len() < k,
            None => true,
        };
        let fresh = !self.consumed_serials.contains(&grant.serial);
        let accepted = under_bound && fresh;
        if accepted {
            self.consumed_serials.insert(grant.serial);
            slot.push(grant.block.clone());
            self.stats.tokens_consumed += 1;
        }
        ConsumeOutcome {
            accepted,
            slot: slot.clone(),
        }
    }

    fn fork_bound(&self) -> Option<usize> {
        self.k
    }

    fn slot(&self, parent: BlockId) -> Vec<Block> {
        self.slots.slot(parent).to_vec()
    }

    fn stats(&self) -> OracleStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "simulated-pow"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btadt_types::BlockBuilder;

    fn config(scale: f64) -> OracleConfig {
        OracleConfig {
            seed: 17,
            probability_scale: scale,
            min_probability: 1e-6,
        }
    }

    #[test]
    fn pow_success_rate_tracks_merit() {
        let merits = MeritTable::from_weights(&[0.8, 0.2]);
        let mut oracle = SimulatedPow::new(None, merits, config(0.5));
        let genesis = Block::genesis();
        let candidate = BlockBuilder::new(&genesis).nonce(1).build();
        let trials = 4_000;
        let mut wins = [0u32; 2];
        for _ in 0..trials {
            for (p, win) in wins.iter_mut().enumerate() {
                if oracle.get_token(p, &genesis, candidate.clone()).is_some() {
                    *win += 1;
                }
            }
        }
        let f0 = f64::from(wins[0]) / trials as f64;
        let f1 = f64::from(wins[1]) / trials as f64;
        assert!((f0 - 0.4).abs() < 0.04, "p0 frequency {f0} ≉ 0.4");
        assert!((f1 - 0.1).abs() < 0.03, "p1 frequency {f1} ≉ 0.1");
        assert!(f0 > f1, "higher merit wins the puzzle more often");
    }

    #[test]
    fn zero_merit_never_solves_the_puzzle() {
        let merits = MeritTable::consortium(2, &[0]);
        let mut oracle = SimulatedPow::new(Some(1), merits, config(1.0));
        let genesis = Block::genesis();
        let candidate = BlockBuilder::new(&genesis).nonce(1).build();
        for _ in 0..200 {
            assert!(oracle.get_token(1, &genesis, candidate.clone()).is_none());
        }
    }

    #[test]
    fn pow_respects_fork_bound_like_frugal() {
        let merits = MeritTable::uniform(1);
        let mut oracle = SimulatedPow::new(
            Some(1),
            merits,
            OracleConfig {
                seed: 1,
                probability_scale: 1e9,
                min_probability: 1.0,
            },
        );
        let genesis = Block::genesis();
        let b1 = BlockBuilder::new(&genesis).nonce(1).build();
        let b2 = BlockBuilder::new(&genesis).nonce(2).build();
        let g1 = oracle.get_token_until_granted(0, &genesis, b1).0;
        let g2 = oracle.get_token_until_granted(0, &genesis, b2).0;
        assert!(oracle.consume_token(&g1).accepted);
        assert!(!oracle.consume_token(&g2).accepted);
        assert_eq!(oracle.slot(genesis.id).len(), 1);
        assert_eq!(oracle.name(), "simulated-pow");
    }

    #[test]
    fn pow_is_deterministic_given_seed() {
        let run = |seed: u64| {
            let merits = MeritTable::uniform(1);
            let pow_config = OracleConfig {
                seed,
                probability_scale: 0.4,
                min_probability: 1e-6,
            };
            let mut oracle = SimulatedPow::new(None, merits, pow_config);
            let genesis = Block::genesis();
            let candidate = BlockBuilder::new(&genesis).nonce(1).build();
            (0..100)
                .map(|_| oracle.get_token(0, &genesis, candidate.clone()).is_some())
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
