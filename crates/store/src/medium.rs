//! A simulated durable medium with injectable write faults.
//!
//! The store never touches the real filesystem — every "file" is a named
//! byte vector inside [`SimMedium`].  That keeps recovery drills
//! deterministic and lets fault injection model exactly the failure
//! vocabulary real disks exhibit at the write boundary:
//!
//! * **torn write** — a crash mid-`write(2)` persists only a prefix of the
//!   buffer;
//! * **bit flip** — silent media corruption of a persisted byte;
//! * **dropped write** — the write "succeeds" but the page cache is lost
//!   before it reaches the platter (no `fsync` barrier held);
//! * **dropped rename** — the atomic manifest swap is acknowledged but the
//!   directory entry update never becomes durable, leaving the *previous*
//!   manifest in place (a stale checkpoint).
//!
//! Faults are decided by a pluggable [`FaultInjector`] at each write, so
//! both the seeded standalone injector ([`SeededCorruption`]) and the
//! chaos-grid seam bridge in `btadt-concurrent` drive the same medium.

use std::collections::BTreeMap;
use std::fmt;

/// The kind of durable operation a fault decision applies to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteKind {
    /// Appending bytes to the end of a file (block records).
    Append,
    /// Replacing a file's contents wholesale (the manifest temp file).
    Overwrite,
    /// Atomically renaming a file over another (the manifest swap).
    Rename,
}

/// One durable operation, presented to the injector before it is applied.
#[derive(Clone, Copy, Debug)]
pub struct WriteOp<'a> {
    /// What the operation does.
    pub kind: WriteKind,
    /// Target file name (the rename *destination* for renames).
    pub file: &'a str,
    /// Payload length in bytes (0 for renames).
    pub len: usize,
}

/// The fault injected into one durable operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteFault {
    /// The operation completes faithfully.
    None,
    /// Only the first `keep` bytes of the payload become durable
    /// (torn write; clamped to the payload length).
    Torn(usize),
    /// The payload becomes durable with bit `bit % (len * 8)` inverted.
    FlipBit(usize),
    /// Nothing becomes durable: a lost write (or, for renames, a lost
    /// directory-entry update — the old destination survives).
    Drop,
}

/// Decides the fault, if any, for each durable operation.
pub trait FaultInjector: Send {
    /// Called once per durable operation, *before* it is applied.
    fn on_write(&mut self, op: &WriteOp<'_>) -> WriteFault;
}

/// Counters of what the medium actually did (and mangled).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MediumStats {
    /// Durable operations attempted (appends + overwrites + renames).
    pub writes: u64,
    /// Payload bytes that became durable.
    pub bytes_written: u64,
    /// Writes that were torn to a prefix.
    pub torn: u64,
    /// Writes that had a bit flipped.
    pub flipped: u64,
    /// Writes (or renames) that were dropped entirely.
    pub dropped: u64,
}

/// The simulated durable medium: a set of named byte-vector files.
pub struct SimMedium {
    files: BTreeMap<String, Vec<u8>>,
    injector: Option<Box<dyn FaultInjector>>,
    stats: MediumStats,
}

impl fmt::Debug for SimMedium {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimMedium")
            .field("files", &self.files.len())
            .field("stats", &self.stats)
            .field("injector", &self.injector.is_some())
            .finish()
    }
}

impl Default for SimMedium {
    fn default() -> Self {
        SimMedium::new()
    }
}

impl SimMedium {
    /// An empty, fault-free medium.
    pub fn new() -> Self {
        SimMedium {
            files: BTreeMap::new(),
            injector: None,
            stats: MediumStats::default(),
        }
    }

    /// Attaches a fault injector (replacing any previous one).
    pub fn set_injector(&mut self, injector: Box<dyn FaultInjector>) {
        self.injector = Some(injector);
    }

    /// Detaches the fault injector: subsequent writes are faithful.
    ///
    /// A crash-restart detaches implicitly (see
    /// [`BlockStore::into_medium`](crate::BlockStore::into_medium)): the
    /// replacement hardware is healthy even though the bytes it reads back
    /// are not.
    pub fn clear_injector(&mut self) {
        self.injector = None;
    }

    /// Counters of durable activity so far.
    pub fn stats(&self) -> MediumStats {
        self.stats
    }

    /// A deep copy of the current file set — a disk image.  The snapshot
    /// carries no injector and fresh stats, so independent fault drills can
    /// each corrupt their own copy of the same crashed medium.
    pub fn snapshot(&self) -> SimMedium {
        SimMedium {
            files: self.files.clone(),
            injector: None,
            stats: MediumStats::default(),
        }
    }

    fn decide(&mut self, kind: WriteKind, file: &str, len: usize) -> WriteFault {
        match self.injector.as_mut() {
            Some(injector) => injector.on_write(&WriteOp { kind, file, len }),
            None => WriteFault::None,
        }
    }

    /// Appends `bytes` to `file` (creating it if absent), subject to
    /// injected faults.  Returns the number of bytes that became durable.
    pub fn append(&mut self, file: &str, bytes: &[u8]) -> usize {
        let fault = self.decide(WriteKind::Append, file, bytes.len());
        self.stats.writes += 1;
        let target = self.files.entry(file.to_string()).or_default();
        let durable = match fault {
            WriteFault::None => {
                target.extend_from_slice(bytes);
                bytes.len()
            }
            WriteFault::Torn(keep) => {
                let keep = keep.min(bytes.len().saturating_sub(1));
                target.extend_from_slice(&bytes[..keep]);
                self.stats.torn += 1;
                keep
            }
            WriteFault::FlipBit(bit) => {
                let start = target.len();
                target.extend_from_slice(bytes);
                if !bytes.is_empty() {
                    let bit = bit % (bytes.len() * 8);
                    target[start + bit / 8] ^= 1 << (bit % 8);
                }
                self.stats.flipped += 1;
                bytes.len()
            }
            WriteFault::Drop => {
                self.stats.dropped += 1;
                0
            }
        };
        self.stats.bytes_written += durable as u64;
        durable
    }

    /// Replaces the contents of `file`, subject to injected faults.
    pub fn overwrite(&mut self, file: &str, bytes: &[u8]) {
        let fault = self.decide(WriteKind::Overwrite, file, bytes.len());
        self.stats.writes += 1;
        let durable: Vec<u8> = match fault {
            WriteFault::None => bytes.to_vec(),
            WriteFault::Torn(keep) => {
                self.stats.torn += 1;
                bytes[..keep.min(bytes.len().saturating_sub(1))].to_vec()
            }
            WriteFault::FlipBit(bit) => {
                let mut copy = bytes.to_vec();
                if !copy.is_empty() {
                    let bit = bit % (copy.len() * 8);
                    copy[bit / 8] ^= 1 << (bit % 8);
                }
                self.stats.flipped += 1;
                copy
            }
            WriteFault::Drop => {
                // The old contents (if any) survive untouched.
                self.stats.dropped += 1;
                return;
            }
        };
        self.stats.bytes_written += durable.len() as u64;
        self.files.insert(file.to_string(), durable);
    }

    /// Atomically renames `from` over `to`.  Subject only to the `Drop`
    /// fault (the acknowledged-but-lost directory update); a dropped rename
    /// leaves *both* the source and the old destination in place.  Returns
    /// `false` if the source does not exist.
    pub fn rename(&mut self, from: &str, to: &str) -> bool {
        if !self.files.contains_key(from) {
            return false;
        }
        let fault = self.decide(WriteKind::Rename, to, 0);
        self.stats.writes += 1;
        if matches!(fault, WriteFault::Drop) {
            self.stats.dropped += 1;
            return true;
        }
        let contents = self.files.remove(from).expect("source checked above");
        self.files.insert(to.to_string(), contents);
        true
    }

    /// Reads a file's durable contents.
    pub fn read(&self, file: &str) -> Option<&[u8]> {
        self.files.get(file).map(|v| v.as_slice())
    }

    /// Removes a file (no fault seam: deletion of garbage is never the
    /// commit point of any protocol in this crate).
    pub fn remove(&mut self, file: &str) -> bool {
        self.files.remove(file).is_some()
    }

    /// Returns `true` iff the file exists.
    pub fn exists(&self, file: &str) -> bool {
        self.files.contains_key(file)
    }

    /// Durable length of a file in bytes (0 if absent).
    pub fn len(&self, file: &str) -> usize {
        self.files.get(file).map(|v| v.len()).unwrap_or(0)
    }

    /// Returns `true` iff the medium holds no files.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// All file names, in sorted order (deterministic).
    pub fn list(&self) -> Vec<String> {
        self.files.keys().cloned().collect()
    }

    /// Test/drill helper: flips one bit of an already-durable file in
    /// place, bypassing the injector.  Returns `false` if the file is
    /// absent or empty.
    pub fn corrupt_bit(&mut self, file: &str, bit: usize) -> bool {
        match self.files.get_mut(file) {
            Some(bytes) if !bytes.is_empty() => {
                let bit = bit % (bytes.len() * 8);
                bytes[bit / 8] ^= 1 << (bit % 8);
                true
            }
            _ => false,
        }
    }

    /// Test/drill helper: truncates an already-durable file in place,
    /// bypassing the injector.
    pub fn truncate(&mut self, file: &str, len: usize) -> bool {
        match self.files.get_mut(file) {
            Some(bytes) => {
                bytes.truncate(len);
                true
            }
            None => false,
        }
    }
}

/// SplitMix64 — the same deterministic generator the fault engine and the
/// workload mixes use, duplicated here so the store crate stays
/// dependency-free below `btadt-types`.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A standalone seeded injector: each durable operation draws one
/// SplitMix64 value from `(seed, occurrence)` and converts it into a fault
/// according to per-kind percentage rates.  Purely a function of the seed
/// and the operation *sequence*, never of wall time — replaying the same
/// write sequence replays the same faults.
#[derive(Clone, Copy, Debug)]
pub struct SeededCorruption {
    seed: u64,
    occurrence: u64,
    /// Percent of appends torn to a prefix.
    pub torn_percent: u8,
    /// Percent of appends with a flipped bit.
    pub flip_percent: u8,
    /// Percent of appends dropped entirely.
    pub drop_percent: u8,
    /// Percent of manifest overwrites torn (partial checkpoint).
    pub checkpoint_percent: u8,
    /// Percent of manifest renames dropped (stale manifest).
    pub stale_percent: u8,
}

impl SeededCorruption {
    /// A quiet injector for `seed` — arm rates field by field.
    pub fn new(seed: u64) -> Self {
        SeededCorruption {
            seed,
            occurrence: 0,
            torn_percent: 0,
            flip_percent: 0,
            drop_percent: 0,
            checkpoint_percent: 0,
            stale_percent: 0,
        }
    }

    /// A record-corruption profile: torn + flipped + dropped appends.
    pub fn records(seed: u64, torn: u8, flip: u8, drop: u8) -> Self {
        let mut c = SeededCorruption::new(seed);
        c.torn_percent = torn;
        c.flip_percent = flip;
        c.drop_percent = drop;
        c
    }

    /// A checkpoint-corruption profile: partial checkpoints + stale
    /// manifests.
    pub fn checkpoints(seed: u64, partial: u8, stale: u8) -> Self {
        let mut c = SeededCorruption::new(seed);
        c.checkpoint_percent = partial;
        c.stale_percent = stale;
        c
    }

    fn draw(&mut self) -> u64 {
        let v = splitmix64(self.seed ^ self.occurrence.wrapping_mul(0xA076_1D64_78BD_642F));
        self.occurrence += 1;
        v
    }
}

impl FaultInjector for SeededCorruption {
    fn on_write(&mut self, op: &WriteOp<'_>) -> WriteFault {
        let roll = self.draw();
        let pct = (roll % 100) as u8;
        let detail = roll >> 7; // independent bits for fault parameters
        match op.kind {
            WriteKind::Append => {
                if pct < self.torn_percent {
                    WriteFault::Torn(detail as usize % op.len.max(1))
                } else if pct < self.torn_percent.saturating_add(self.flip_percent) {
                    WriteFault::FlipBit(detail as usize)
                } else if pct
                    < self
                        .torn_percent
                        .saturating_add(self.flip_percent)
                        .saturating_add(self.drop_percent)
                {
                    WriteFault::Drop
                } else {
                    WriteFault::None
                }
            }
            WriteKind::Overwrite => {
                if pct < self.checkpoint_percent {
                    WriteFault::Torn(detail as usize % op.len.max(1))
                } else {
                    WriteFault::None
                }
            }
            WriteKind::Rename => {
                if pct < self.stale_percent {
                    WriteFault::Drop
                } else {
                    WriteFault::None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faithful_append_and_read_back() {
        let mut m = SimMedium::new();
        assert_eq!(m.append("a", b"hello"), 5);
        assert_eq!(m.append("a", b" world"), 6);
        assert_eq!(m.read("a"), Some(&b"hello world"[..]));
        assert_eq!(m.len("a"), 11);
        assert_eq!(m.stats().bytes_written, 11);
        assert_eq!(m.stats().writes, 2);
    }

    #[test]
    fn rename_is_an_atomic_swap() {
        let mut m = SimMedium::new();
        m.overwrite("manifest.tmp", b"new");
        m.overwrite("manifest", b"old");
        assert!(m.rename("manifest.tmp", "manifest"));
        assert_eq!(m.read("manifest"), Some(&b"new"[..]));
        assert!(!m.exists("manifest.tmp"));
        assert!(!m.rename("missing", "manifest"));
    }

    struct Script(Vec<WriteFault>);
    impl FaultInjector for Script {
        fn on_write(&mut self, _op: &WriteOp<'_>) -> WriteFault {
            if self.0.is_empty() {
                WriteFault::None
            } else {
                self.0.remove(0)
            }
        }
    }

    #[test]
    fn torn_append_keeps_a_strict_prefix() {
        let mut m = SimMedium::new();
        m.set_injector(Box::new(Script(vec![WriteFault::Torn(3)])));
        assert_eq!(m.append("a", b"hello"), 3);
        assert_eq!(m.read("a"), Some(&b"hel"[..]));
        assert_eq!(m.stats().torn, 1);
        // A torn write never persists the full payload, even if asked to.
        m.set_injector(Box::new(Script(vec![WriteFault::Torn(99)])));
        assert_eq!(m.append("b", b"xy"), 1);
    }

    #[test]
    fn flipped_append_changes_exactly_one_bit() {
        let mut m = SimMedium::new();
        m.append("a", b"prefix");
        m.set_injector(Box::new(Script(vec![WriteFault::FlipBit(9)])));
        m.append("a", b"\x00\x00");
        let got = m.read("a").unwrap();
        assert_eq!(&got[..6], b"prefix");
        assert_eq!(got[6], 0);
        assert_eq!(got[7], 0b10); // bit 9 = byte 1, bit 1
        assert_eq!(m.stats().flipped, 1);
    }

    #[test]
    fn dropped_append_and_dropped_rename_change_nothing() {
        let mut m = SimMedium::new();
        m.overwrite("manifest", b"old");
        m.overwrite("manifest.tmp", b"new");
        m.set_injector(Box::new(Script(vec![WriteFault::Drop, WriteFault::Drop])));
        assert_eq!(m.append("a", b"xyz"), 0);
        assert!(!m.exists("a") || m.len("a") == 0);
        assert!(m.rename("manifest.tmp", "manifest"));
        assert_eq!(m.read("manifest"), Some(&b"old"[..]), "stale manifest");
        assert!(m.exists("manifest.tmp"), "orphaned temp file survives");
        assert_eq!(m.stats().dropped, 2);
    }

    #[test]
    fn corrupt_bit_and_truncate_helpers() {
        let mut m = SimMedium::new();
        m.append("a", &[0u8; 4]);
        assert!(m.corrupt_bit("a", 8));
        assert_eq!(m.read("a").unwrap()[1], 1);
        assert!(m.truncate("a", 2));
        assert_eq!(m.len("a"), 2);
        assert!(!m.corrupt_bit("missing", 0));
        assert!(!m.truncate("missing", 0));
    }

    #[test]
    fn seeded_corruption_is_deterministic() {
        let run = |seed: u64| {
            let mut inj = SeededCorruption::records(seed, 20, 10, 5);
            (0..64)
                .map(|i| {
                    inj.on_write(&WriteOp {
                        kind: WriteKind::Append,
                        file: "chunk-0",
                        len: 40 + i,
                    })
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
        let faults = run(7);
        assert!(faults.iter().any(|f| *f != WriteFault::None));
        assert!(faults.contains(&WriteFault::None));
    }

    #[test]
    fn checkpoint_profile_only_faults_manifest_operations() {
        let mut inj = SeededCorruption::checkpoints(3, 100, 100);
        let append = inj.on_write(&WriteOp {
            kind: WriteKind::Append,
            file: "chunk-0",
            len: 10,
        });
        assert_eq!(append, WriteFault::None);
        let over = inj.on_write(&WriteOp {
            kind: WriteKind::Overwrite,
            file: "manifest.tmp",
            len: 10,
        });
        assert!(matches!(over, WriteFault::Torn(_)));
        let ren = inj.on_write(&WriteOp {
            kind: WriteKind::Rename,
            file: "manifest",
            len: 0,
        });
        assert_eq!(ren, WriteFault::Drop);
    }
}
