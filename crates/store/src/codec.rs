//! Block record encoding with per-record checksums.
//!
//! Each block persists as one length-prefixed record:
//!
//! ```text
//! [u32 body_len][body][u64 checksum64(body)]
//! ```
//!
//! The body serialises every [`Block`] field little-endian (a flag byte
//! marks the optional parent), and the trailing checksum is FNV-1a over the
//! body — the same structural-hash family the block identifiers use, which
//! is exactly the right strength here: the store defends against *media*
//! faults (torn tails, flipped bits, lost pages), not against adversarial
//! forgery, which the paper's model never relies on (see DESIGN.md).
//!
//! Decoding distinguishes the two failure shapes recovery treats
//! differently: [`DecodeError::Truncated`] (the record runs past the end of
//! the buffer — a torn tail, or a length field mangled upward) and
//! [`DecodeError::Corrupt`] (the record is self-delimiting but its checksum
//! or structural identifier disagrees — salvage can skip it and continue at
//! the next record boundary).

use btadt_types::{Block, BlockId, Transaction};

/// Upper bound on a record body; a decoded length above this is treated as
/// corruption rather than an allocation request.
pub const MAX_RECORD_BYTES: usize = 1 << 20;

/// Streaming FNV-1a: the chunk checksum is maintained incrementally as
/// records are appended, so sealing a chunk never re-reads it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64(Self::OFFSET)
    }

    /// Feeds bytes into the running hash.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// The hash of everything fed so far (non-consuming).
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// FNV-1a over a byte slice — the record and chunk checksum function.
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

/// A decoding failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ends before the record does: a torn tail (or a length
    /// field corrupted past the end — indistinguishable, and treated the
    /// same way: everything from here on is lost).
    Truncated,
    /// The record is self-delimiting but its contents fail verification;
    /// the byte offset just past it is recoverable, so salvage can skip it.
    Corrupt(String),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "record truncated"),
            DecodeError::Corrupt(why) => write!(f, "record corrupt: {why}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// A decode failure surfacing through an ingest path (recovery replay,
/// peer-served deltas) folds into the unified taxonomy as a storage
/// failure.
impl From<DecodeError> for btadt_pipeline::IngestError {
    fn from(e: DecodeError) -> Self {
        btadt_pipeline::IngestError::Storage(e.to_string())
    }
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn get_u32(buf: &[u8], off: &mut usize) -> Result<u32, DecodeError> {
    let end = off.checked_add(4).ok_or(DecodeError::Truncated)?;
    let bytes = buf.get(*off..end).ok_or(DecodeError::Truncated)?;
    *off = end;
    Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
}

pub(crate) fn get_u64(buf: &[u8], off: &mut usize) -> Result<u64, DecodeError> {
    let end = off.checked_add(8).ok_or(DecodeError::Truncated)?;
    let bytes = buf.get(*off..end).ok_or(DecodeError::Truncated)?;
    *off = end;
    Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
}

fn get_u8(buf: &[u8], off: &mut usize) -> Result<u8, DecodeError> {
    let b = *buf.get(*off).ok_or(DecodeError::Truncated)?;
    *off += 1;
    Ok(b)
}

/// Serialises a block body (no length prefix, no checksum).
fn encode_body(block: &Block) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + block.payload.len() * 24);
    put_u64(&mut out, block.id.0);
    match block.parent {
        Some(parent) => {
            out.push(1);
            put_u64(&mut out, parent.0);
        }
        None => out.push(0),
    }
    put_u64(&mut out, block.height);
    put_u32(&mut out, block.producer);
    put_u32(&mut out, block.merit_ppm);
    put_u64(&mut out, block.nonce);
    put_u64(&mut out, block.work);
    put_u32(
        &mut out,
        u32::try_from(block.payload.len()).expect("payload fits u32"),
    );
    for tx in &block.payload {
        put_u64(&mut out, tx.id.0);
        put_u32(&mut out, tx.from);
        put_u32(&mut out, tx.to);
        put_u64(&mut out, tx.amount);
    }
    out
}

/// Encodes one block as a checksummed, length-prefixed record.
pub fn encode_record(block: &Block) -> Vec<u8> {
    let body = encode_body(block);
    let mut out = Vec::with_capacity(body.len() + 12);
    put_u32(&mut out, u32::try_from(body.len()).expect("body fits u32"));
    out.extend_from_slice(&body);
    put_u64(&mut out, checksum64(&body));
    out
}

/// Decodes one record at the start of `buf`.
///
/// On success returns the block and the number of bytes consumed.  A
/// [`DecodeError::Corrupt`] record still has a well-defined end — callers
/// that want to salvage the rest of a chunk can advance by
/// `record_span(buf)` and continue.
pub fn decode_record(buf: &[u8]) -> Result<(Block, usize), DecodeError> {
    let mut off = 0usize;
    let body_len = get_u32(buf, &mut off)? as usize;
    if body_len > MAX_RECORD_BYTES {
        // A mangled length field this large is corruption, but the record
        // boundary is unrecoverable: treat it as a truncating fault.
        return Err(DecodeError::Truncated);
    }
    let body_end = off + body_len;
    let body = buf.get(off..body_end).ok_or(DecodeError::Truncated)?;
    off = body_end;
    let stored_sum = get_u64(buf, &mut off)?;
    let consumed = off;
    if checksum64(body) != stored_sum {
        return Err(DecodeError::Corrupt("checksum mismatch".to_string()));
    }

    let mut at = 0usize;
    let corrupt = |why: &str| DecodeError::Corrupt(why.to_string());
    let id = BlockId(get_u64(body, &mut at).map_err(|_| corrupt("short body"))?);
    let parent = match get_u8(body, &mut at).map_err(|_| corrupt("short body"))? {
        0 => None,
        1 => Some(BlockId(
            get_u64(body, &mut at).map_err(|_| corrupt("short body"))?,
        )),
        flag => return Err(corrupt(&format!("bad parent flag {flag}"))),
    };
    let height = get_u64(body, &mut at).map_err(|_| corrupt("short body"))?;
    let producer = get_u32(body, &mut at).map_err(|_| corrupt("short body"))?;
    let merit_ppm = get_u32(body, &mut at).map_err(|_| corrupt("short body"))?;
    let nonce = get_u64(body, &mut at).map_err(|_| corrupt("short body"))?;
    let work = get_u64(body, &mut at).map_err(|_| corrupt("short body"))?;
    let tx_count = get_u32(body, &mut at).map_err(|_| corrupt("short body"))? as usize;
    if tx_count > body_len / 24 + 1 {
        return Err(corrupt("transaction count exceeds body"));
    }
    let mut payload = Vec::with_capacity(tx_count);
    for _ in 0..tx_count {
        let txid = get_u64(body, &mut at).map_err(|_| corrupt("short body"))?;
        let from = get_u32(body, &mut at).map_err(|_| corrupt("short body"))?;
        let to = get_u32(body, &mut at).map_err(|_| corrupt("short body"))?;
        let amount = get_u64(body, &mut at).map_err(|_| corrupt("short body"))?;
        payload.push(Transaction::transfer(txid, from, to, amount));
    }
    if at != body.len() {
        return Err(corrupt("trailing bytes in body"));
    }

    // Defence in depth: for non-genesis blocks the identifier must be the
    // structural hash of the contents (a checksum collision would have to
    // also collide FNV over a *different* byte layout to slip through).
    if let Some(parent) = parent {
        let expected = Block::compute_id(parent, producer, nonce, work, &payload);
        if expected != id {
            return Err(corrupt("structural identifier mismatch"));
        }
    }

    Ok((
        Block {
            id,
            parent,
            height,
            payload,
            producer,
            merit_ppm,
            nonce,
            work,
        },
        consumed,
    ))
}

/// The byte span of the record at the start of `buf`, if its length field
/// is intact enough to delimit it (used to skip a corrupt record during
/// salvage).
pub fn record_span(buf: &[u8]) -> Option<usize> {
    let mut off = 0usize;
    let body_len = get_u32(buf, &mut off).ok()? as usize;
    if body_len > MAX_RECORD_BYTES {
        return None;
    }
    let span = off + body_len + 8;
    (span <= buf.len()).then_some(span)
}

#[cfg(test)]
mod tests {
    use super::*;
    use btadt_types::BlockBuilder;

    fn sample() -> Block {
        BlockBuilder::new(&Block::genesis())
            .producer(3)
            .merit_ppm(250_000)
            .nonce(42)
            .work(5)
            .push_tx(Transaction::transfer(9, 1, 2, 100))
            .push_tx(Transaction::heartbeat(10, 1))
            .build()
    }

    #[test]
    fn round_trip_preserves_every_field() {
        let block = sample();
        let rec = encode_record(&block);
        let (decoded, consumed) = decode_record(&rec).unwrap();
        assert_eq!(decoded, block);
        assert_eq!(consumed, rec.len());
    }

    #[test]
    fn genesis_round_trips_without_a_parent() {
        let rec = encode_record(&Block::genesis());
        let (decoded, _) = decode_record(&rec).unwrap();
        assert_eq!(decoded, Block::genesis());
    }

    #[test]
    fn truncation_reports_truncated_at_every_cut() {
        let rec = encode_record(&sample());
        for cut in 0..rec.len() {
            assert_eq!(
                decode_record(&rec[..cut]).unwrap_err(),
                DecodeError::Truncated,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn any_single_bit_flip_is_detected() {
        let rec = encode_record(&sample());
        for bit in 0..rec.len() * 8 {
            let mut copy = rec.clone();
            copy[bit / 8] ^= 1 << (bit % 8);
            assert!(
                decode_record(&copy).is_err(),
                "flip of bit {bit} slipped through"
            );
        }
    }

    #[test]
    fn corrupt_records_are_skippable_by_span() {
        let a = encode_record(&sample());
        let b = encode_record(&Block::genesis());
        let mut buf = a.clone();
        buf.extend_from_slice(&b);
        // Corrupt a body byte of the first record (not its length prefix).
        buf[6] ^= 0xFF;
        let err = decode_record(&buf).unwrap_err();
        assert!(matches!(err, DecodeError::Corrupt(_)));
        let span = record_span(&buf).unwrap();
        assert_eq!(span, a.len());
        let (decoded, _) = decode_record(&buf[span..]).unwrap();
        assert_eq!(decoded, Block::genesis());
    }

    #[test]
    fn absurd_length_fields_are_truncating() {
        let mut rec = encode_record(&sample());
        rec[0..4].copy_from_slice(&(u32::MAX).to_le_bytes());
        assert_eq!(decode_record(&rec).unwrap_err(), DecodeError::Truncated);
        assert_eq!(record_span(&rec), None);
    }

    #[test]
    fn forged_contents_fail_the_structural_identifier() {
        let block = sample();
        let mut forged = block.clone();
        forged.nonce += 1; // contents change, id does not
        let rec = encode_record(&forged);
        let err = decode_record(&rec).unwrap_err();
        assert!(
            matches!(&err, DecodeError::Corrupt(why) if why.contains("identifier")),
            "{err}"
        );
    }
}
