//! # btadt-store — durable state for the BT-ADT reproduction
//!
//! The paper's replicas are in-memory objects; the ROADMAP north-star
//! (million-block, million-user scale) needs durable state that can be
//! **wrong**: torn writes, bit flips, lost pages and stale checkpoints
//! must be detected, quarantined and repaired from peers rather than
//! trusted.  This crate supplies that layer, modelled on the caching
//! store + pruning-processor split of rusty-kaspa:
//!
//! * [`SimMedium`] — a simulated durable medium with an injectable fault
//!   vocabulary (torn / flipped / dropped writes, dropped renames);
//! * [`codec`] — checksummed, length-prefixed block records;
//! * [`BlockStore`] — chunked append-only store with per-record and
//!   per-chunk checksums, atomic-manifest checkpoints, a canonicalising
//!   recovery pipeline and crash-safe pruning compaction;
//! * [`CheckpointedReplica`] — a memory-bounded replica: hot
//!   [`BlockTree`](btadt_types::BlockTree) window over cold chunks, with
//!   peer-healing of corruption gaps.
//!
//! Everything is deterministic: faults are seeded functions of the write
//! sequence, never of wall time, so every corruption/recovery drill in the
//! chaos grid and the benches replays byte-identically.

#![warn(missing_docs)]

pub mod codec;
pub mod medium;
pub mod replica;
pub mod store;

pub use codec::{checksum64, decode_record, encode_record, DecodeError};
pub use medium::{
    FaultInjector, MediumStats, SeededCorruption, SimMedium, WriteFault, WriteKind, WriteOp,
};
pub use replica::{CheckpointedReplica, ReplicaConfig};
pub use store::{
    chunk_file, BlockStore, ChunkMeta, PruneOutcome, RecoveryReport, StoreConfig, StoreStats,
    MANIFEST, MANIFEST_TMP,
};
