//! A durable, memory-bounded replica: hot [`BlockTree`] window over a
//! [`BlockStore`].
//!
//! The ROADMAP north-star is million-block scale; an unboundedly growing
//! in-RAM tree is a non-starter.  [`CheckpointedReplica`] keeps only a
//! **hot window** of the tree resident — everything above the pruning
//! point — while the full selected-chain spine lives in cold chunks:
//!
//! * [`ingest`](CheckpointedReplica::ingest) inserts into the hot tree and
//!   appends to the store (checkpoints fire on the store's cadence);
//! * every [`prune_every`](ReplicaConfig::prune_every) appends, the
//!   pruning point advances to `selected tip − prune_depth` (clamped to
//!   the last checkpoint height — the store refuses to GC unsealed
//!   history) and the hot tree is **rebased** onto the new pruning block
//!   via [`BlockTree::rerooted`]; losing subtrees entirely below the point
//!   are garbage-collected from the store.  Safety argument: a selection
//!   function with common-prefix ever picks a chain through the pruning
//!   point once it is `prune_depth` below the selected tip, so discarded
//!   forks can never be re-selected (the same argument rusty-kaspa's
//!   pruning processor makes);
//! * [`crash`](CheckpointedReplica::crash) +
//!   [`recover`](CheckpointedReplica::recover) round-trip through the
//!   store's recovery pipeline; blocks that corruption orphaned are
//!   surfaced via [`missing_parents`](CheckpointedReplica::missing_parents)
//!   and healed with [`admit_blocks`](CheckpointedReplica::admit_blocks) —
//!   the delta a healthy peer serves.

use std::collections::HashSet;

use btadt_pipeline::{stage_batch, BatchReport, Ingest, IngestError, IngestVerdict, StagedBatch};
use btadt_types::{Block, BlockId, BlockTree};

use crate::medium::SimMedium;
use crate::store::{BlockStore, RecoveryReport, StoreConfig};

/// Static configuration of a [`CheckpointedReplica`].
#[derive(Clone, Copy, Debug)]
pub struct ReplicaConfig {
    /// Heights kept hot below the selected tip.
    pub prune_depth: u64,
    /// Appends between pruning attempts (0 = manual pruning only).
    pub prune_every: u64,
    /// Soft ceiling on resident hot blocks; `resident_peak` reports
    /// against it (the bench gate asserts the ceiling held).
    pub memory_ceiling: usize,
    /// Configuration of the underlying chunk store.
    pub store: StoreConfig,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        ReplicaConfig {
            prune_depth: 64,
            prune_every: 256,
            memory_ceiling: 4096,
            store: StoreConfig::default(),
        }
    }
}

/// A durable replica with a bounded-resident hot window.
#[derive(Debug)]
pub struct CheckpointedReplica {
    config: ReplicaConfig,
    hot: BlockTree,
    store: BlockStore,
    /// Selected-chain block ids at heights `1..=pruning point`, oldest
    /// first — the cold spine (ids only; contents live in the store).
    cold_spine: Vec<BlockId>,
    /// Blocks recovered or received whose parents are not (yet) present.
    pending: Vec<Block>,
    appends_since_prune: u64,
    resident_peak: usize,
    pruned_from_hot: u64,
}

impl CheckpointedReplica {
    /// A fresh replica over an empty medium.
    pub fn new(config: ReplicaConfig) -> Self {
        CheckpointedReplica {
            config,
            hot: BlockTree::new(),
            store: BlockStore::create(SimMedium::new(), config.store),
            cold_spine: Vec::new(),
            pending: Vec::new(),
            appends_since_prune: 0,
            resident_peak: 1,
            pruned_from_hot: 0,
        }
    }

    /// The replica's configuration.
    pub fn config(&self) -> ReplicaConfig {
        self.config
    }

    /// The hot window.
    pub fn hot(&self) -> &BlockTree {
        &self.hot
    }

    /// The underlying store.
    pub fn store(&self) -> &BlockStore {
        &self.store
    }

    /// Mutable access to the store (fault-injector attachment point).
    pub fn store_mut(&mut self) -> &mut BlockStore {
        &mut self.store
    }

    /// Blocks currently resident in RAM (hot window + unhealed pending).
    pub fn resident_blocks(&self) -> usize {
        self.hot.len() + self.pending.len()
    }

    /// The high-water mark of [`resident_blocks`](Self::resident_blocks).
    pub fn resident_peak(&self) -> usize {
        self.resident_peak
    }

    /// Blocks evicted from the hot window by rebase pruning so far.
    pub fn pruned_from_hot(&self) -> u64 {
        self.pruned_from_hot
    }

    /// The current pruning point height.
    pub fn pruning_height(&self) -> u64 {
        self.hot.genesis().height
    }

    /// Height of the selected tip.
    pub fn height(&self) -> u64 {
        self.hot.height()
    }

    /// The selected tip (heaviest chain, largest-id tie-break).
    pub fn tip(&self) -> BlockId {
        self.hot.best_leaf_by_work(true)
    }

    /// Total chain length including the cold spine below the window.
    pub fn total_selected_len(&self) -> u64 {
        self.height() + 1
    }

    /// `true` iff the block is known hot, cold, or pending.
    pub fn knows(&self, id: BlockId) -> bool {
        self.hot.contains(id) || self.store.contains(id) || self.pending.iter().any(|b| b.id == id)
    }

    fn note_resident(&mut self) {
        self.resident_peak = self.resident_peak.max(self.resident_blocks());
    }

    /// Ingests one block: hot insert + durable append, then the pruning
    /// cadence.  Blocks below the pruning point are rejected as
    /// `UnknownParent` — they extend history the replica has retired.
    pub fn ingest(&mut self, block: Block) -> Result<(), IngestError> {
        self.hot.insert(block.clone())?;
        self.store.append(&block);
        self.note_resident();
        self.appends_since_prune += 1;
        if self.config.prune_every > 0 && self.appends_since_prune >= self.config.prune_every {
            self.prune_now();
        }
        Ok(())
    }

    /// Advances the pruning point to `selected tip − prune_depth` (clamped
    /// to the last checkpoint height) and rebases the hot window onto it.
    /// Returns the number of blocks GC'd from the store, or `None` when
    /// the point cannot advance yet.
    pub fn prune_now(&mut self) -> Option<usize> {
        self.appends_since_prune = 0;
        let tip = self.tip();
        let tip_height = self.hot.get(tip).expect("tip is resident").height;
        let target = tip_height
            .saturating_sub(self.config.prune_depth)
            .min(self.store.checkpoint_height());
        if target <= self.pruning_height() {
            return None;
        }

        // Walk the selected chain down to the new pruning block.
        let mut cursor = self.hot.get(tip).expect("tip is resident").clone();
        while cursor.height > target {
            let parent = cursor.parent.expect("above the root, parents resident");
            cursor = self
                .hot
                .get(parent)
                .expect("above the root, parents resident")
                .clone();
        }
        let new_root = cursor;

        // Everything in the new root's subtree stays hot; the spine walk
        // from the new root down to the old root goes cold; the rest of
        // the old window is a losing subtree: GC it from the store.
        let root_idx = self.hot.idx_of(new_root.id).expect("new root is resident");
        let mut keep_hot: HashSet<BlockId> = HashSet::new();
        let mut stack = vec![root_idx];
        while let Some(idx) = stack.pop() {
            keep_hot.insert(self.hot.block_at(idx).id);
            stack.extend_from_slice(self.hot.children_idx(idx));
        }
        let mut new_cold: Vec<BlockId> = Vec::new();
        let mut walk = new_root.clone();
        while walk.height > self.pruning_height() {
            new_cold.push(walk.id);
            let Some(parent) = walk.parent else { break };
            match self.hot.get(parent) {
                Some(block) => walk = block.clone(),
                None => break,
            }
        }
        new_cold.reverse();
        self.cold_spine.extend(new_cold);

        let mut keep_store: HashSet<BlockId> = self.cold_spine.iter().copied().collect();
        keep_store.extend(keep_hot.iter().copied());
        let outcome = self.store.prune(&keep_store, target);

        // Rebase the hot window (arena order keeps parents first).
        let mut window = BlockTree::rerooted(new_root.clone());
        for block in self.hot.blocks() {
            if block.id != new_root.id && keep_hot.contains(&block.id) {
                window
                    .insert(block.clone())
                    .expect("subtree re-inserts in arena order");
            }
        }
        self.pruned_from_hot += (self.hot.len() - window.len()) as u64;
        self.hot = window;
        self.note_resident();
        Some(outcome.dropped)
    }

    /// Forces a checkpoint of the underlying store.
    pub fn checkpoint(&mut self) {
        self.store.checkpoint();
    }

    /// Simulates a crash: volatile state is lost, the medium survives.
    pub fn crash(self) -> SimMedium {
        self.store.into_medium()
    }

    /// Rebuilds a replica from a crashed medium.  Surviving blocks are
    /// re-inserted orphan-tolerantly from the genesis block up; whatever
    /// corruption severed waits in `pending` until
    /// [`admit_blocks`](Self::admit_blocks) heals the gap.
    pub fn recover(medium: SimMedium, config: ReplicaConfig) -> (Self, RecoveryReport) {
        let (store, report, survivors) = BlockStore::recover(medium, config.store);
        let mut replica = CheckpointedReplica {
            config,
            hot: BlockTree::new(),
            store,
            cold_spine: Vec::new(),
            pending: survivors,
            appends_since_prune: 0,
            resident_peak: 1,
            pruned_from_hot: 0,
        };
        replica.settle_pending();
        replica.note_resident();
        (replica, report)
    }

    /// Re-inserts pending blocks until no progress: each pass admits every
    /// block whose parent became resident.  Quadratic in the worst case
    /// but pending sets are corruption-sized, not history-sized.
    fn settle_pending(&mut self) {
        loop {
            let mut progressed = false;
            let mut still = Vec::with_capacity(self.pending.len());
            for block in std::mem::take(&mut self.pending) {
                if self.hot.contains(block.id) {
                    continue; // duplicate
                }
                match self.hot.insert(block.clone()) {
                    Ok(()) => progressed = true,
                    Err(_) => still.push(block),
                }
            }
            self.pending = still;
            if !progressed || self.pending.is_empty() {
                break;
            }
        }
    }

    /// The parent ids the pending blocks are waiting for — the exact
    /// damaged/missing gap to request from healthy peers.
    pub fn missing_parents(&self) -> Vec<BlockId> {
        let mut missing: Vec<BlockId> = self
            .pending
            .iter()
            .filter_map(|b| b.parent)
            .filter(|p| !self.hot.contains(*p) && !self.pending.iter().any(|b| b.id == *p))
            .collect();
        missing.sort_unstable();
        missing.dedup();
        missing
    }

    /// `true` iff every surviving block is linked into the hot tree.
    pub fn is_healed(&self) -> bool {
        self.pending.is_empty()
    }

    /// Admits peer-served blocks (parents-first batches work best, but any
    /// order settles via the pending pool).  New blocks are re-persisted.
    /// Returns the number of blocks newly linked into the tree.
    pub fn admit_blocks(&mut self, blocks: &[Block]) -> usize {
        let before = self.hot.len();
        for block in blocks {
            if self.hot.contains(block.id) || self.pending.iter().any(|b| b.id == block.id) {
                continue;
            }
            let was_stored = self.store.contains(block.id);
            if self.hot.insert(block.clone()).is_err() {
                self.pending.push(block.clone());
            }
            if !was_stored {
                self.store.append(block);
            }
        }
        self.settle_pending();
        // Settled pending blocks were already persisted at recovery time
        // only if they survived; re-check and persist the newly linked.
        let linked: Vec<Block> = self
            .hot
            .blocks()
            .filter(|b| !b.is_genesis() && !self.store.contains(b.id))
            .cloned()
            .collect();
        for block in linked {
            self.store.append(&block);
        }
        self.note_resident();
        self.hot.len() - before
    }
}

/// The unified ingest door: batches stage against everything the replica
/// knows (hot, cold, pending); orphans wait in the same pending pool that
/// recovery survivors and peer-served deltas settle through.
impl Ingest for CheckpointedReplica {
    fn knows_block(&self, id: BlockId) -> bool {
        self.knows(id)
    }

    fn ingest_block(&mut self, block: Block) -> IngestVerdict {
        IngestVerdict::from_result(self.ingest(block))
    }

    fn ingest_batch(&mut self, blocks: Vec<Block>) -> BatchReport {
        let StagedBatch {
            ready,
            orphans,
            mut verdicts,
            ..
        } = stage_batch(blocks, |id| self.knows(id));
        for (pos, block) in ready {
            verdicts[pos] = Some(IngestVerdict::from_result(self.ingest(block)));
        }
        for (_, block) in orphans {
            self.pending.push(block);
        }
        // A settled orphan still reports `Orphaned` — the verdict describes
        // what staging saw, and pooling (not rejection) is the contract.
        self.settle_pending();
        let linked: Vec<Block> = self
            .hot
            .blocks()
            .filter(|b| !b.is_genesis() && !self.store.contains(b.id))
            .cloned()
            .collect();
        for block in linked {
            self.store.append(&block);
        }
        self.note_resident();
        BatchReport::from_verdicts(
            verdicts
                .into_iter()
                .map(|v| v.expect("every input position receives a verdict"))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btadt_types::BlockBuilder;

    /// Drives a deterministic mostly-linear workload with occasional forks.
    fn grow(replica: &mut CheckpointedReplica, n: usize, seed: u64) -> Vec<Block> {
        let mut produced = Vec::with_capacity(n);
        let mut tips: Vec<Block> = vec![replica.hot().genesis().clone()];
        let mut state = seed;
        for i in 0..n {
            state = crate::medium::splitmix64(state);
            // 1 in 8 blocks forks off a recent (still-hot) ancestor.
            let parent = if state.is_multiple_of(8) && tips.len() > 1 {
                tips[tips.len() - 2].clone()
            } else {
                tips[tips.len() - 1].clone()
            };
            let block = BlockBuilder::new(&parent)
                .producer((state % 5) as u32)
                .nonce(i as u64)
                .work(1 + state % 3)
                .build();
            replica.ingest(block.clone()).expect("parent is hot");
            if block.height > tips.last().unwrap().height {
                tips.push(block.clone());
                if tips.len() > 4 {
                    tips.remove(0);
                }
            }
            produced.push(block);
        }
        produced
    }

    fn small_config() -> ReplicaConfig {
        ReplicaConfig {
            prune_depth: 16,
            prune_every: 32,
            memory_ceiling: 128,
            store: StoreConfig::small(),
        }
    }

    #[test]
    fn pruning_keeps_residency_bounded_and_the_spine_cold() {
        let mut replica = CheckpointedReplica::new(small_config());
        grow(&mut replica, 500, 7);
        assert!(
            replica.resident_peak() <= replica.config().memory_ceiling,
            "peak {} over ceiling {}",
            replica.resident_peak(),
            replica.config().memory_ceiling
        );
        assert!(replica.pruning_height() > 0, "the point advanced");
        assert!(replica.pruned_from_hot() > 0);
        // The cold spine + hot selected chain reconstruct the full chain.
        assert_eq!(
            replica.cold_spine.len() as u64,
            replica.pruning_height(),
            "one cold spine id per pruned height"
        );
        // The store holds the spine: every cold id is durable.
        for id in &replica.cold_spine {
            assert!(replica.store().contains(*id));
        }
    }

    #[test]
    fn pruning_never_advances_past_the_last_checkpoint() {
        let mut config = small_config();
        config.store.auto_checkpoint_every = 0; // manual checkpoints only
        config.prune_every = 0;
        let mut replica = CheckpointedReplica::new(config);
        grow(&mut replica, 60, 3);
        // No checkpoint has ever run: pruning cannot advance at all.
        assert_eq!(replica.prune_now(), None);
        replica.checkpoint();
        let gc = replica.prune_now();
        assert!(gc.is_some(), "after a checkpoint the point advances");
    }

    #[test]
    fn crash_recover_round_trip_is_lossless_when_clean() {
        let mut replica = CheckpointedReplica::new(small_config());
        grow(&mut replica, 200, 11);
        replica.checkpoint();
        let tip = replica.tip();
        let height = replica.height();
        let stored = replica.store().len();
        let (recovered, report) = CheckpointedReplica::recover(replica.crash(), small_config());
        assert!(report.is_pristine(), "{report:?}");
        assert!(recovered.is_healed());
        assert_eq!(recovered.store().len(), stored);
        assert_eq!(recovered.height(), height);
        assert_eq!(recovered.tip(), tip);
    }

    #[test]
    fn corruption_gap_is_healed_from_a_peer() {
        let config = ReplicaConfig {
            prune_depth: 64,
            prune_every: 0, // keep everything hot on the peer
            memory_ceiling: 4096,
            store: StoreConfig::small(),
        };
        let mut replica = CheckpointedReplica::new(config);
        let produced = grow(&mut replica, 120, 23);
        replica.checkpoint();
        // A pristine peer that saw the same history.
        let mut peer = CheckpointedReplica::new(config);
        for block in &produced {
            peer.ingest(block.clone()).unwrap();
        }

        // Corrupt two chunks: a bit flip and a torn tail.
        let mut medium = replica.crash();
        let chunks: Vec<String> = medium
            .list()
            .into_iter()
            .filter(|f| f.starts_with("chunk-"))
            .collect();
        assert!(chunks.len() >= 3);
        medium.corrupt_bit(&chunks[1], 130 * 8);
        let tail = medium.len(&chunks[2]);
        medium.truncate(&chunks[2], tail.saturating_sub(9));

        let (mut recovered, report) = CheckpointedReplica::recover(medium, config);
        assert!(!report.is_pristine());
        assert!(report.blocks_recovered < produced.len());

        // Heal: serve exactly what the replica asks for until it settles.
        let mut rounds = 0;
        while !recovered.is_healed() {
            rounds += 1;
            assert!(rounds < 64, "healing must converge");
            let missing = recovered.missing_parents();
            assert!(!missing.is_empty(), "unhealed replica names its gap");
            let serve: Vec<Block> = missing
                .iter()
                .filter_map(|id| peer.hot().get(*id).cloned())
                .collect();
            assert!(!serve.is_empty(), "the peer can serve the gap");
            recovered.admit_blocks(&serve);
        }
        // Converged: same tip, and every surviving + healed block durable.
        assert_eq!(recovered.height(), peer.height());
        assert_eq!(recovered.tip(), peer.tip());
        assert_eq!(recovered.store().len(), recovered.hot().len() - 1);
    }

    #[test]
    fn batch_ingest_matches_sequential_and_pools_orphans() {
        let config = small_config();
        let mut batched = CheckpointedReplica::new(config);
        let genesis = batched.hot().genesis().clone();
        let a = BlockBuilder::new(&genesis).nonce(1).build();
        let b = BlockBuilder::new(&a).nonce(2).build();
        let c = BlockBuilder::new(&b).nonce(3).build();
        let d = BlockBuilder::new(&c).nonce(4).build();

        // Shuffled ready set plus an orphan whose parent (c) is missing.
        let report = batched.ingest_batch(vec![b.clone(), a.clone(), d.clone()]);
        assert_eq!(
            report.verdicts,
            vec![
                IngestVerdict::Accepted,
                IngestVerdict::Accepted,
                IngestVerdict::Orphaned
            ]
        );
        assert!(!batched.is_healed(), "the orphan waits in pending");
        assert_eq!(batched.missing_parents(), vec![c.id]);

        // Serving the gap settles the pooled orphan and persists it.
        let heal = batched.ingest_batch(vec![c.clone()]);
        assert_eq!(heal.accepted, 1);
        assert!(batched.is_healed());
        assert!(batched.hot().contains(d.id));
        assert!(batched.store().contains(d.id));

        // Observationally equivalent to one-at-a-time ingest.
        let mut seq = CheckpointedReplica::new(config);
        for block in [&a, &b, &c, &d] {
            seq.ingest(block.clone()).unwrap();
        }
        assert_eq!(batched.height(), seq.height());
        assert_eq!(batched.tip(), seq.tip());
        assert_eq!(batched.store().len(), seq.store().len());
    }

    #[test]
    fn batch_reingest_is_all_duplicates() {
        let mut config = small_config();
        config.prune_every = 0; // retired history would not re-stage as known
        let mut replica = CheckpointedReplica::new(config);
        let produced = grow(&mut replica, 40, 13);
        let report = replica.ingest_batch(produced.clone());
        assert_eq!(report.duplicates, produced.len());
        assert_eq!(report.accepted, 0);
        assert!(report.is_clean());
    }

    #[test]
    fn recovery_after_prune_race_converges() {
        let config = small_config();
        let mut replica = CheckpointedReplica::new(config);
        let _ = grow(&mut replica, 200, 31);
        replica.checkpoint();
        // The keep-set prune_now would compute: cold spine + the selected
        // chain down from the tip.
        let mut keep: HashSet<BlockId> = replica.cold_spine.iter().copied().collect();
        let mut cursor = replica.hot().get(replica.tip()).cloned();
        while let Some(block) = cursor {
            keep.insert(block.id);
            cursor = block.parent.and_then(|p| replica.hot().get(p).cloned());
        }
        let target = replica.height().saturating_sub(8);
        // Rip the store out mid-compaction (the PruneRace seam).
        let store = std::mem::replace(
            &mut replica.store,
            BlockStore::create(SimMedium::new(), config.store),
        );
        let medium = store.prune_crashing_before_commit(&keep, target);
        let (mut recovered, report) = CheckpointedReplica::recover(medium, config);
        assert!(report.duplicates_dropped > 0, "both layouts were on disk");
        assert_eq!(report.corrupt_records, 0, "the race loses no integrity");
        // Blocks orphaned by straddling forks (if any) heal from the
        // surviving pre-crash tree.
        let mut rounds = 0;
        while !recovered.is_healed() {
            rounds += 1;
            assert!(rounds < 64, "healing must converge");
            let serve: Vec<Block> = recovered
                .missing_parents()
                .iter()
                .filter_map(|id| replica.hot().get(*id).cloned())
                .collect();
            assert!(!serve.is_empty(), "the peer can serve the gap");
            recovered.admit_blocks(&serve);
        }
        assert_eq!(recovered.height(), replica.height());
    }
}
