//! The chunked append-only block store.
//!
//! ## Layout
//!
//! Blocks are appended as checksummed records (see [`crate::codec`]) to an
//! *active chunk* file; when the chunk reaches
//! [`StoreConfig::chunk_capacity`] records it is **sealed** — its byte
//! length and whole-chunk checksum (maintained incrementally, never
//! re-read) become part of the next checkpoint.  A **checkpoint** writes a
//! manifest listing every sealed chunk, the active chunk index, the
//! pruning height and a generation counter, protected by its own trailing
//! checksum — first to `manifest.tmp`, then committed with one atomic
//! rename.  The chunk files themselves are never rewritten on the happy
//! path, so the only commit point in the whole store is that rename: the
//! crash-consistency argument is the classic shadow-manifest one
//! (rusty-kaspa's store/pruning split applies the same discipline).
//!
//! ## Corruption taxonomy and recovery
//!
//! [`BlockStore::recover`] rebuilds a store from a medium of unknown
//! integrity:
//!
//! 1. the manifest is read and checksum-verified; if it is absent or
//!    corrupt, recovery falls back to an empty manifest and trusts only
//!    per-record checksums (`manifest_fallback`);
//! 2. every chunk file on the medium is scanned record by record — records
//!    with intact boundaries but failing checksums are **skipped and
//!    counted** (bit flips), a record that runs past the end of the file
//!    **truncates the torn tail** (torn writes, mangled length fields);
//! 3. a sealed chunk whose byte length or whole-chunk checksum disagrees
//!    with its manifest entry is **damaged** even when every surviving
//!    record parses — that is how *dropped* appends inside sealed history
//!    are detected.  Damaged chunks are copied to `quarantine-*` for
//!    forensics; chunks listed in the manifest but missing from the medium
//!    count as lost;
//! 4. surviving blocks (deduplicated by id — interrupted compactions leave
//!    benign duplicates) are rewritten into a **fresh canonical layout**
//!    and immediately checkpointed, so a second crash during recovery
//!    replays the same pipeline over an already-clean store (idempotent).
//!
//! Blocks that existed only in lost/damaged regions are simply *gone* from
//! the store's perspective — the recovery report and the returned block
//! set tell the replica layer exactly what survived, and the replica
//! delta-syncs the gap from healthy peers (hardened gossip, or the peer
//! healing in `CheckpointedReplica`).
//!
//! ## Pruning
//!
//! [`BlockStore::prune`] garbage-collects losing subtrees: the caller
//! supplies the keep-set (selected-chain spine + the hot window) and a
//! requested pruning height, which is clamped to the **last checkpoint
//! height** — history is only GC'd once a durable manifest seals it.
//! Compaction writes the retained blocks into fresh chunk indices, commits
//! them with a manifest swap, and only then deletes the old chunk files;
//! a crash at any intermediate point (the `PruneRace` seam) leaves either
//! the old layout (manifest not yet swapped) or a benign superposition of
//! both, which recovery's id-dedup canonicalisation collapses.

use std::collections::HashSet;

use btadt_types::{Block, BlockId};

use crate::codec::{
    checksum64, decode_record, encode_record, get_u32, get_u64, put_u32, put_u64, record_span,
    DecodeError, Fnv64,
};
use crate::medium::SimMedium;

/// The durable manifest file name.
pub const MANIFEST: &str = "manifest";
/// The shadow manifest written before the atomic swap.
pub const MANIFEST_TMP: &str = "manifest.tmp";

const MANIFEST_MAGIC: u64 = 0x4254_5354_4f52_4531; // "BTSTORE1"
const MANIFEST_VERSION: u32 = 1;

/// Static configuration of a [`BlockStore`].
#[derive(Clone, Copy, Debug)]
pub struct StoreConfig {
    /// Records per chunk before the active chunk is sealed.
    pub chunk_capacity: u32,
    /// Appends between automatic checkpoints (0 = manual checkpoints only).
    pub auto_checkpoint_every: u64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            chunk_capacity: 256,
            auto_checkpoint_every: 0,
        }
    }
}

impl StoreConfig {
    /// A small configuration that seals and checkpoints often — convenient
    /// for tests and chaos cells that want many commit points.
    pub fn small() -> Self {
        StoreConfig {
            chunk_capacity: 8,
            auto_checkpoint_every: 16,
        }
    }
}

/// Metadata of one sealed chunk, as recorded in the manifest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkMeta {
    /// Chunk index (chunk indices are assigned once and never reused).
    pub index: u64,
    /// Number of records sealed into the chunk.
    pub records: u32,
    /// Byte length of the chunk file at sealing time.
    pub bytes: u64,
    /// Whole-chunk checksum at sealing time.
    pub checksum: u64,
}

/// The file name of a chunk index (zero-padded so sorted listings are in
/// index order).
pub fn chunk_file(index: u64) -> String {
    format!("chunk-{index:010}")
}

fn parse_chunk_index(name: &str) -> Option<u64> {
    name.strip_prefix("chunk-")?.parse().ok()
}

/// Counters of store activity (volatile; reset by recovery).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Blocks appended.
    pub appended: u64,
    /// Chunks sealed.
    pub chunks_sealed: u64,
    /// Checkpoints attempted (the medium decides what became durable).
    pub checkpoints: u64,
    /// Blocks garbage-collected by pruning.
    pub pruned: u64,
    /// Compaction passes completed.
    pub prunes: u64,
}

/// What one recovery pass found and repaired.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Blocks that survived verification (after id-dedup).
    pub blocks_recovered: usize,
    /// Records skipped for failing their checksum (bit flips et al.).
    pub corrupt_records: usize,
    /// Bytes dropped from chunk tails (torn writes, mangled lengths).
    pub torn_tail_bytes: u64,
    /// Chunks quarantined for damage (bad whole-chunk checksum, short
    /// record count, or any record-level fault inside them).
    pub chunks_quarantined: usize,
    /// Chunks listed in the manifest but absent from the medium.
    pub chunks_missing: usize,
    /// Chunks that verified clean end to end.
    pub chunks_verified: usize,
    /// Duplicate records dropped (benign residue of interrupted compaction).
    pub duplicates_dropped: usize,
    /// `true` when the manifest itself was absent or corrupt and recovery
    /// fell back to per-record trust only.
    pub manifest_fallback: bool,
    /// The pruning height carried over from the recovered manifest.
    pub pruning_height: u64,
}

impl RecoveryReport {
    /// `true` iff recovery found no damage of any kind.
    pub fn is_pristine(&self) -> bool {
        self.corrupt_records == 0
            && self.torn_tail_bytes == 0
            && self.chunks_quarantined == 0
            && self.chunks_missing == 0
            && self.duplicates_dropped == 0
            && !self.manifest_fallback
    }
}

/// The result of one pruning compaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PruneOutcome {
    /// Blocks retained in the compacted layout.
    pub retained: usize,
    /// Blocks garbage-collected.
    pub dropped: usize,
    /// The effective pruning height (requested, clamped to the last
    /// checkpoint height).
    pub pruning_height: u64,
}

struct Manifest {
    generation: u64,
    pruning_height: u64,
    checkpoint_height: u64,
    next_index: u64,
    active_index: u64,
    sealed: Vec<ChunkMeta>,
}

fn encode_manifest(m: &Manifest) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + m.sealed.len() * 28);
    put_u64(&mut out, MANIFEST_MAGIC);
    put_u32(&mut out, MANIFEST_VERSION);
    put_u64(&mut out, m.generation);
    put_u64(&mut out, m.pruning_height);
    put_u64(&mut out, m.checkpoint_height);
    put_u64(&mut out, m.next_index);
    put_u64(&mut out, m.active_index);
    put_u32(
        &mut out,
        u32::try_from(m.sealed.len()).expect("sealed count fits u32"),
    );
    for chunk in &m.sealed {
        put_u64(&mut out, chunk.index);
        put_u32(&mut out, chunk.records);
        put_u64(&mut out, chunk.bytes);
        put_u64(&mut out, chunk.checksum);
    }
    let sum = checksum64(&out);
    put_u64(&mut out, sum);
    out
}

fn decode_manifest(buf: &[u8]) -> Result<Manifest, DecodeError> {
    if buf.len() < 8 {
        return Err(DecodeError::Truncated);
    }
    let (body, tail) = buf.split_at(buf.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
    if checksum64(body) != stored {
        return Err(DecodeError::Corrupt("manifest checksum mismatch".into()));
    }
    let mut off = 0usize;
    if get_u64(body, &mut off)? != MANIFEST_MAGIC {
        return Err(DecodeError::Corrupt("bad manifest magic".into()));
    }
    if get_u32(body, &mut off)? != MANIFEST_VERSION {
        return Err(DecodeError::Corrupt("unknown manifest version".into()));
    }
    let generation = get_u64(body, &mut off)?;
    let pruning_height = get_u64(body, &mut off)?;
    let checkpoint_height = get_u64(body, &mut off)?;
    let next_index = get_u64(body, &mut off)?;
    let active_index = get_u64(body, &mut off)?;
    let count = get_u32(body, &mut off)? as usize;
    let mut sealed = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        sealed.push(ChunkMeta {
            index: get_u64(body, &mut off)?,
            records: get_u32(body, &mut off)?,
            bytes: get_u64(body, &mut off)?,
            checksum: get_u64(body, &mut off)?,
        });
    }
    if off != body.len() {
        return Err(DecodeError::Corrupt("trailing manifest bytes".into()));
    }
    Ok(Manifest {
        generation,
        pruning_height,
        checkpoint_height,
        next_index,
        active_index,
        sealed,
    })
}

/// The chunked append-only block store over a [`SimMedium`].
#[derive(Debug)]
pub struct BlockStore {
    config: StoreConfig,
    medium: SimMedium,
    sealed: Vec<ChunkMeta>,
    active_index: u64,
    active_records: u32,
    active_bytes: u64,
    active_hash: Fnv64,
    next_index: u64,
    index: HashSet<BlockId>,
    generation: u64,
    pruning_height: u64,
    checkpoint_height: u64,
    max_height: u64,
    appends_since_checkpoint: u64,
    stats: StoreStats,
}

impl BlockStore {
    /// Creates a fresh store over `medium` (which should be empty of
    /// `chunk-*`/`manifest` files; recovery is the entry point for a
    /// non-empty medium).
    pub fn create(medium: SimMedium, config: StoreConfig) -> Self {
        BlockStore {
            config,
            medium,
            sealed: Vec::new(),
            active_index: 0,
            active_records: 0,
            active_bytes: 0,
            active_hash: Fnv64::new(),
            next_index: 1,
            index: HashSet::new(),
            generation: 0,
            pruning_height: 0,
            checkpoint_height: 0,
            max_height: 0,
            appends_since_checkpoint: 0,
            stats: StoreStats::default(),
        }
    }

    /// The store's configuration.
    pub fn config(&self) -> StoreConfig {
        self.config
    }

    /// Number of blocks the store believes it holds.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// `true` iff no blocks have been appended.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// `true` iff the store believes it holds `id`.
    pub fn contains(&self, id: BlockId) -> bool {
        self.index.contains(&id)
    }

    /// The current pruning height (blocks at or below it exist only on the
    /// selected-chain spine).
    pub fn pruning_height(&self) -> u64 {
        self.pruning_height
    }

    /// The maximum block height covered by the last checkpoint attempt.
    pub fn checkpoint_height(&self) -> u64 {
        self.checkpoint_height
    }

    /// Sealed chunks of the live layout.
    pub fn sealed_chunks(&self) -> &[ChunkMeta] {
        &self.sealed
    }

    /// Volatile activity counters.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Read-only access to the medium.
    pub fn medium(&self) -> &SimMedium {
        &self.medium
    }

    /// Mutable access to the medium — the hook point for attaching fault
    /// injectors and for corruption drills.
    pub fn medium_mut(&mut self) -> &mut SimMedium {
        &mut self.medium
    }

    /// Simulates a crash: every volatile structure (index, sealed list,
    /// counters) is dropped, only the durable medium survives — with its
    /// fault injector detached, because the *replacement* hardware is
    /// healthy even though the bytes it reads back may not be.
    pub fn into_medium(mut self) -> SimMedium {
        self.medium.clear_injector();
        self.medium
    }

    /// Appends one block to the active chunk, sealing and checkpointing as
    /// configured.  The append is *believed* durable — whether it actually
    /// became durable is the medium's (and recovery's) business.
    pub fn append(&mut self, block: &Block) {
        let record = encode_record(block);
        self.medium.append(&chunk_file(self.active_index), &record);
        self.active_hash.update(&record);
        self.active_bytes += record.len() as u64;
        self.active_records += 1;
        self.index.insert(block.id);
        self.max_height = self.max_height.max(block.height);
        self.stats.appended += 1;
        if self.active_records >= self.config.chunk_capacity {
            self.seal_active();
        }
        self.appends_since_checkpoint += 1;
        if self.config.auto_checkpoint_every > 0
            && self.appends_since_checkpoint >= self.config.auto_checkpoint_every
        {
            self.checkpoint();
        }
    }

    fn seal_active(&mut self) {
        self.sealed.push(ChunkMeta {
            index: self.active_index,
            records: self.active_records,
            bytes: self.active_bytes,
            checksum: self.active_hash.finish(),
        });
        self.active_index = self.next_index;
        self.next_index += 1;
        self.active_records = 0;
        self.active_bytes = 0;
        self.active_hash = Fnv64::new();
        self.stats.chunks_sealed += 1;
    }

    /// Writes a checkpoint: shadow manifest, then the atomic swap.  The
    /// `PartialCheckpoint` fault tears the shadow write; the
    /// `StaleManifest` fault drops the swap — both leave the *previous*
    /// durable manifest authoritative, which is exactly what recovery
    /// assumes.
    pub fn checkpoint(&mut self) {
        self.generation += 1;
        let manifest = Manifest {
            generation: self.generation,
            pruning_height: self.pruning_height,
            checkpoint_height: self.max_height,
            next_index: self.next_index,
            active_index: self.active_index,
            sealed: self.sealed.clone(),
        };
        let bytes = encode_manifest(&manifest);
        self.medium.overwrite(MANIFEST_TMP, &bytes);
        self.medium.rename(MANIFEST_TMP, MANIFEST);
        self.checkpoint_height = self.max_height;
        self.appends_since_checkpoint = 0;
        self.stats.checkpoints += 1;
    }

    /// Decodes every block of the live layout from the medium, in chunk
    /// order (append order: parents precede children barring corruption).
    ///
    /// Undecodable records are *skipped* — this accessor reports what the
    /// medium can prove, the recovery pipeline is the authority on damage.
    pub fn blocks(&self) -> Vec<Block> {
        let mut out = Vec::with_capacity(self.index.len());
        let mut indices: Vec<u64> = self.sealed.iter().map(|c| c.index).collect();
        indices.push(self.active_index);
        for index in indices {
            let Some(bytes) = self.medium.read(&chunk_file(index)) else {
                continue;
            };
            let mut off = 0usize;
            while off < bytes.len() {
                match decode_record(&bytes[off..]) {
                    Ok((block, consumed)) => {
                        out.push(block);
                        off += consumed;
                    }
                    Err(DecodeError::Corrupt(_)) => match record_span(&bytes[off..]) {
                        Some(span) => off += span,
                        None => break,
                    },
                    Err(DecodeError::Truncated) => break,
                }
            }
        }
        out
    }

    /// Garbage-collects every block that is neither above the effective
    /// pruning height nor in `keep` (the selected-chain spine).  See the
    /// module docs for the crash-safety argument.
    pub fn prune(&mut self, keep: &HashSet<BlockId>, requested_height: u64) -> PruneOutcome {
        self.prune_inner(keep, requested_height, false)
            .expect("uninterrupted prune completes")
    }

    /// Pruning interrupted *after* the compacted chunks are written but
    /// *before* the manifest swap — the `PruneRace` seam.  Consumes the
    /// store and returns the crashed medium; [`BlockStore::recover`] must
    /// collapse the old-layout/new-layout superposition.
    pub fn prune_crashing_before_commit(
        mut self,
        keep: &HashSet<BlockId>,
        requested_height: u64,
    ) -> SimMedium {
        let interrupted = self.prune_inner(keep, requested_height, true);
        debug_assert!(
            interrupted.is_none(),
            "interrupted prune returns no outcome"
        );
        self.into_medium()
    }

    fn prune_inner(
        &mut self,
        keep: &HashSet<BlockId>,
        requested_height: u64,
        crash_before_commit: bool,
    ) -> Option<PruneOutcome> {
        let effective = requested_height.min(self.checkpoint_height);
        let all = self.blocks();
        let total = all.len();
        let retained: Vec<Block> = all
            .into_iter()
            .filter(|b| b.height > effective || keep.contains(&b.id))
            .collect();
        let dropped = total - retained.len();

        // Write the compacted layout at fresh indices (never reused, so
        // the old and new layouts coexist until the swap commits).
        let old_indices: Vec<u64> = self
            .sealed
            .iter()
            .map(|c| c.index)
            .chain([self.active_index])
            .collect();
        let first_new = self.next_index;
        let mut sealed = Vec::new();
        let mut active_index = first_new;
        let mut next_index = first_new + 1;
        let mut records = 0u32;
        let mut bytes_len = 0u64;
        let mut hash = Fnv64::new();
        for block in &retained {
            let record = encode_record(block);
            self.medium.append(&chunk_file(active_index), &record);
            hash.update(&record);
            bytes_len += record.len() as u64;
            records += 1;
            if records >= self.config.chunk_capacity {
                sealed.push(ChunkMeta {
                    index: active_index,
                    records,
                    bytes: bytes_len,
                    checksum: hash.finish(),
                });
                active_index = next_index;
                next_index += 1;
                records = 0;
                bytes_len = 0;
                hash = Fnv64::new();
            }
        }

        if crash_before_commit {
            return None;
        }

        // Commit: swap in a manifest describing only the new layout…
        self.sealed = sealed;
        self.active_index = active_index;
        self.next_index = next_index;
        self.active_records = records;
        self.active_bytes = bytes_len;
        self.active_hash = hash;
        self.index = retained.iter().map(|b| b.id).collect();
        self.pruning_height = effective;
        self.checkpoint();
        // …then delete the superseded chunk files (pure garbage now).
        for index in old_indices {
            self.medium.remove(&chunk_file(index));
        }
        self.stats.pruned += dropped as u64;
        self.stats.prunes += 1;
        Some(PruneOutcome {
            retained: retained.len(),
            dropped,
            pruning_height: effective,
        })
    }

    /// Rebuilds a store from a medium of unknown integrity.  Returns the
    /// recovered store (fresh canonical layout, already checkpointed), the
    /// damage report, and the surviving blocks in scan order.
    pub fn recover(
        mut medium: SimMedium,
        config: StoreConfig,
    ) -> (Self, RecoveryReport, Vec<Block>) {
        let mut report = RecoveryReport::default();

        let manifest = match medium.read(MANIFEST).map(decode_manifest) {
            Some(Ok(manifest)) => Some(manifest),
            Some(Err(_)) => {
                report.manifest_fallback = true;
                None
            }
            None => {
                // An absent manifest is only a fault if data exists.
                report.manifest_fallback = medium.list().iter().any(|f| f.starts_with("chunk-"));
                None
            }
        };
        report.pruning_height = manifest.as_ref().map(|m| m.pruning_height).unwrap_or(0);

        // The scan set: every chunk file on the medium, in index order.
        let mut on_disk: Vec<(u64, String)> = medium
            .list()
            .into_iter()
            .filter_map(|name| parse_chunk_index(&name).map(|i| (i, name)))
            .collect();
        on_disk.sort_unstable();
        let present: HashSet<u64> = on_disk.iter().map(|&(i, _)| i).collect();
        if let Some(m) = &manifest {
            report.chunks_missing = m
                .sealed
                .iter()
                .filter(|c| !present.contains(&c.index))
                .count();
        }

        let mut seen: HashSet<BlockId> = HashSet::new();
        let mut blocks: Vec<Block> = Vec::new();
        let mut quarantine: Vec<(String, Vec<u8>)> = Vec::new();
        for (index, name) in &on_disk {
            let bytes = medium.read(name).expect("listed file exists").to_vec();
            let meta = manifest
                .as_ref()
                .and_then(|m| m.sealed.iter().find(|c| c.index == *index).copied());
            let mut damaged = match meta {
                Some(meta) => {
                    meta.bytes != bytes.len() as u64 || meta.checksum != checksum64(&bytes)
                }
                None => false,
            };
            let mut parsed = 0u32;
            let mut off = 0usize;
            while off < bytes.len() {
                match decode_record(&bytes[off..]) {
                    Ok((block, consumed)) => {
                        if seen.insert(block.id) {
                            blocks.push(block);
                        } else {
                            report.duplicates_dropped += 1;
                        }
                        parsed += 1;
                        off += consumed;
                    }
                    Err(DecodeError::Corrupt(_)) => {
                        report.corrupt_records += 1;
                        damaged = true;
                        match record_span(&bytes[off..]) {
                            Some(span) => off += span,
                            None => {
                                report.torn_tail_bytes += (bytes.len() - off) as u64;
                                break;
                            }
                        }
                    }
                    Err(DecodeError::Truncated) => {
                        report.torn_tail_bytes += (bytes.len() - off) as u64;
                        damaged = true;
                        break;
                    }
                }
            }
            if let Some(meta) = meta {
                // Fewer surviving records than sealed: dropped appends.
                if parsed < meta.records {
                    damaged = true;
                }
            }
            if damaged {
                report.chunks_quarantined += 1;
                quarantine.push((format!("quarantine-{name}"), bytes));
            } else {
                report.chunks_verified += 1;
            }
        }

        // Canonicalise: quarantine forensic copies, drop the old layout,
        // rewrite the survivors, checkpoint.
        for (name, bytes) in quarantine {
            medium.overwrite(&name, &bytes);
        }
        for (_, name) in &on_disk {
            medium.remove(name);
        }
        medium.remove(MANIFEST);
        medium.remove(MANIFEST_TMP);

        let mut store = BlockStore::create(medium, config);
        store.pruning_height = report.pruning_height;
        for block in &blocks {
            store.append(block);
        }
        store.checkpoint();
        store.stats = StoreStats::default();
        report.blocks_recovered = blocks.len();
        (store, report, blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btadt_types::BlockBuilder;

    /// A deterministic chain of `n` blocks hanging off the genesis block.
    fn chain(n: usize) -> Vec<Block> {
        let mut parent = Block::genesis();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let block = BlockBuilder::new(&parent)
                .producer(1)
                .nonce(i as u64)
                .work(1 + (i as u64 % 3))
                .build();
            parent = block.clone();
            out.push(block);
        }
        out
    }

    fn store_with(blocks: &[Block], config: StoreConfig) -> BlockStore {
        let mut store = BlockStore::create(SimMedium::new(), config);
        for b in blocks {
            store.append(b);
        }
        store
    }

    #[test]
    fn append_seal_checkpoint_recover_round_trip() {
        let blocks = chain(30);
        let mut store = store_with(&blocks, StoreConfig::small());
        store.checkpoint();
        assert_eq!(store.len(), 30);
        assert!(store.sealed_chunks().len() >= 3);
        let (recovered, report, survivors) =
            BlockStore::recover(store.into_medium(), StoreConfig::small());
        assert!(report.is_pristine(), "{report:?}");
        assert_eq!(report.blocks_recovered, 30);
        assert_eq!(survivors, blocks);
        assert_eq!(recovered.len(), 30);
        for b in &blocks {
            assert!(recovered.contains(b.id));
        }
    }

    #[test]
    fn crash_without_any_checkpoint_still_recovers_records() {
        let blocks = chain(10);
        let store = store_with(&blocks, StoreConfig::default());
        // No checkpoint at all: no manifest, only the active chunk file.
        let (_, report, survivors) =
            BlockStore::recover(store.into_medium(), StoreConfig::default());
        assert_eq!(survivors.len(), 10);
        assert!(report.manifest_fallback, "no manifest to trust");
        assert_eq!(report.corrupt_records, 0);
    }

    #[test]
    fn torn_tail_is_truncated_and_the_rest_survives() {
        let blocks = chain(5);
        let mut store = store_with(&blocks, StoreConfig::default());
        store.checkpoint();
        let file = chunk_file(0);
        let len = store.medium().len(&file);
        let mut medium = store.into_medium();
        medium.truncate(&file, len - 7); // tear the last record
        let (_, report, survivors) = BlockStore::recover(medium, StoreConfig::default());
        assert_eq!(survivors.len(), 4);
        assert!(report.torn_tail_bytes > 0);
        assert_eq!(report.chunks_quarantined, 1);
        assert_eq!(survivors, blocks[..4]);
    }

    #[test]
    fn bit_flip_quarantines_the_chunk_but_salvages_the_rest() {
        let blocks = chain(6);
        let mut store = store_with(&blocks, StoreConfig::default());
        store.checkpoint();
        let mut medium = store.into_medium();
        // Flip a bit in the *second* record's body, far from length fields.
        let record_len = encode_record(&blocks[0]).len();
        medium.corrupt_bit(&chunk_file(0), (record_len + 10) * 8);
        let (_, report, survivors) = BlockStore::recover(medium, StoreConfig::default());
        assert_eq!(report.corrupt_records, 1);
        assert_eq!(report.chunks_quarantined, 1);
        assert_eq!(survivors.len(), 5, "all but the flipped record salvage");
        assert!(survivors.iter().all(|b| b.id != blocks[1].id));
    }

    #[test]
    fn a_corrupt_manifest_falls_back_to_per_record_trust() {
        let blocks = chain(12);
        let mut store = store_with(&blocks, StoreConfig::small());
        store.checkpoint();
        let mut medium = store.into_medium();
        medium.corrupt_bit(MANIFEST, 100);
        let (_, report, survivors) = BlockStore::recover(medium, StoreConfig::small());
        assert!(report.manifest_fallback);
        assert_eq!(survivors.len(), 12, "records carry their own checksums");
    }

    #[test]
    fn dropped_records_inside_a_sealed_chunk_are_detected() {
        // Build the same sealed chunk twice: once faithfully, once with a
        // record missing — then graft the short file under the faithful
        // manifest, as a dropped append would leave it.
        let blocks = chain(8);
        let config = StoreConfig {
            chunk_capacity: 8,
            auto_checkpoint_every: 0,
        };
        let mut faithful = store_with(&blocks, config);
        faithful.checkpoint();
        let mut medium = faithful.into_medium();
        let file = chunk_file(0);
        let full = medium.read(&file).unwrap().to_vec();
        let span = record_span(&full).unwrap();
        medium.overwrite(&file, &full[span..]); // first record silently gone
        let (_, report, survivors) = BlockStore::recover(medium, config);
        assert_eq!(report.chunks_quarantined, 1, "short chunk is damaged");
        assert_eq!(survivors.len(), 7);
        assert!(survivors.iter().all(|b| b.id != blocks[0].id));
    }

    #[test]
    fn missing_chunk_files_are_reported() {
        let blocks = chain(20);
        let mut store = store_with(&blocks, StoreConfig::small());
        store.checkpoint();
        let mut medium = store.into_medium();
        assert!(medium.remove(&chunk_file(1)));
        let (_, report, survivors) = BlockStore::recover(medium, StoreConfig::small());
        assert_eq!(report.chunks_missing, 1);
        assert_eq!(survivors.len(), 12, "8 of 20 lived in the lost chunk");
    }

    #[test]
    fn prune_drops_losers_and_is_clamped_to_the_checkpoint() {
        let blocks = chain(20);
        let mut store = store_with(&blocks, StoreConfig::small());
        // Last checkpoint covered height 16 (auto, every 16 appends).
        assert_eq!(store.checkpoint_height(), 16);
        let keep: HashSet<BlockId> = blocks[..10].iter().map(|b| b.id).collect();
        let outcome = store.prune(&keep, 18);
        assert_eq!(outcome.pruning_height, 16, "clamped to the checkpoint");
        // Heights 11..=16 are neither kept nor above the pruning height.
        assert_eq!(outcome.dropped, 6);
        assert_eq!(outcome.retained, 14);
        assert_eq!(store.len(), 14);
        assert!(store.contains(blocks[0].id), "spine survives");
        assert!(!store.contains(blocks[12].id), "loser is gone");
        assert!(store.contains(blocks[17].id), "above the point survives");
        // The compacted layout recovers cleanly.
        let (recovered, report, survivors) =
            BlockStore::recover(store.into_medium(), StoreConfig::small());
        assert!(report.is_pristine(), "{report:?}");
        assert_eq!(survivors.len(), 14);
        assert_eq!(recovered.pruning_height(), 16);
    }

    #[test]
    fn prune_race_crash_recovers_the_old_layout_without_duplicates() {
        let blocks = chain(20);
        let mut store = store_with(&blocks, StoreConfig::small());
        store.checkpoint();
        let keep: HashSet<BlockId> = blocks[..5].iter().map(|b| b.id).collect();
        let medium = store.prune_crashing_before_commit(&keep, 10);
        // Old chunks AND uncommitted compacted chunks coexist on disk.
        let (recovered, report, survivors) = BlockStore::recover(medium, StoreConfig::small());
        assert_eq!(survivors.len(), 20, "the committed layout wins: no loss");
        assert!(report.duplicates_dropped > 0, "compaction residue deduped");
        assert_eq!(report.corrupt_records, 0);
        assert_eq!(recovered.len(), 20);
    }

    #[test]
    fn recovery_is_idempotent_under_double_crash() {
        let blocks = chain(25);
        let mut store = store_with(&blocks, StoreConfig::small());
        store.checkpoint();
        let mut medium = store.into_medium();
        medium.corrupt_bit(&chunk_file(0), 999);
        let (first, report1, survivors1) = BlockStore::recover(medium, StoreConfig::small());
        // Crash again mid-life: the second recovery sees a clean store.
        let (_, report2, survivors2) =
            BlockStore::recover(first.into_medium(), StoreConfig::small());
        assert!(report1.corrupt_records > 0);
        assert!(report2.is_pristine(), "{report2:?}");
        assert_eq!(survivors1.len(), survivors2.len());
    }

    #[test]
    fn stale_manifest_recovery_scans_unlisted_chunks() {
        use crate::medium::{FaultInjector, WriteFault, WriteKind, WriteOp};
        struct DropRenames;
        impl FaultInjector for DropRenames {
            fn on_write(&mut self, op: &WriteOp<'_>) -> WriteFault {
                if op.kind == WriteKind::Rename {
                    WriteFault::Drop
                } else {
                    WriteFault::None
                }
            }
        }
        let blocks = chain(20);
        let mut store = store_with(&blocks[..10], StoreConfig::small());
        store.checkpoint(); // durable manifest covers the first 10
        store.medium_mut().set_injector(Box::new(DropRenames));
        for b in &blocks[10..] {
            store.append(b);
        }
        store.checkpoint(); // this swap is dropped: manifest stays stale
        let (_, _report, survivors) =
            BlockStore::recover(store.into_medium(), StoreConfig::small());
        assert_eq!(
            survivors.len(),
            20,
            "chunks beyond the stale manifest are still scanned"
        );
    }
}
