//! Checker equivalence: the reachability-indexed SC/EC checkers must
//! produce **byte-identical** verdicts to the chain-walking reference
//! checkers on every history the oracle machinery can produce.
//!
//! The reference conjunctions (`*_consistency_reference`) run the same
//! properties in reference mode — positional chain zipping, no caches —
//! so any disagreement pins the divergence to the index substitution.

use std::sync::Arc;

use btadt_core::hierarchy::{run_contended, ContendedRunConfig, OracleKind};
use btadt_core::{
    eventual_consistency, eventual_consistency_reference, strong_consistency,
    strong_consistency_reference,
};
use btadt_history::ConsistencyCriterion;
use btadt_types::{AlwaysValid, LengthScore, NoDoubleSpend, WorkScore};

fn config(seed: u64, rounds: usize, sync_probability: f64) -> ContendedRunConfig {
    ContendedRunConfig {
        processes: 4,
        rounds,
        sync_probability,
        seed,
    }
}

#[test]
fn contended_histories_get_identical_sc_and_ec_verdicts() {
    let kinds = [
        OracleKind::Frugal(1),
        OracleKind::Frugal(3),
        OracleKind::Prodigal,
    ];
    for kind in kinds {
        for seed in 0..4u64 {
            for sync in [0.1, 0.5, 1.0] {
                let run = run_contended(kind, config(seed, 24, sync));
                let sc = strong_consistency(Arc::new(LengthScore), Arc::new(AlwaysValid));
                let sc_ref =
                    strong_consistency_reference(Arc::new(LengthScore), Arc::new(AlwaysValid));
                assert_eq!(
                    sc.check(&run.history),
                    sc_ref.check(&run.history),
                    "{} seed {seed} sync {sync}: SC verdicts diverge",
                    kind.label()
                );
                let ec = eventual_consistency(Arc::new(LengthScore), Arc::new(AlwaysValid));
                let ec_ref =
                    eventual_consistency_reference(Arc::new(LengthScore), Arc::new(AlwaysValid));
                assert_eq!(
                    ec.check(&run.history),
                    ec_ref.check(&run.history),
                    "{} seed {seed} sync {sync}: EC verdicts diverge",
                    kind.label()
                );
            }
        }
    }
}

#[test]
fn equivalence_holds_under_work_score_and_real_validity() {
    // A different score function and a non-trivial validity predicate:
    // the caches and the mcps memoization must not change any verdict.
    for seed in [3u64, 11] {
        let run = run_contended(OracleKind::Prodigal, config(seed, 40, 0.3));
        let sc = strong_consistency(Arc::new(WorkScore), Arc::new(NoDoubleSpend));
        let sc_ref = strong_consistency_reference(Arc::new(WorkScore), Arc::new(NoDoubleSpend));
        assert_eq!(sc.check(&run.history), sc_ref.check(&run.history));
        let ec = eventual_consistency(Arc::new(WorkScore), Arc::new(NoDoubleSpend));
        let ec_ref = eventual_consistency_reference(Arc::new(WorkScore), Arc::new(NoDoubleSpend));
        assert_eq!(ec.check(&run.history), ec_ref.check(&run.history));
    }
}

#[test]
fn heavy_contention_verdicts_are_capped_identically() {
    // The bench configuration: thousands of pairwise Strong Prefix
    // violations.  Both paths must fold them into the same capped verdict
    // (first 16 with full detail plus one summary per property).
    let run = run_contended(
        OracleKind::Prodigal,
        ContendedRunConfig {
            processes: 4,
            rounds: 60,
            sync_probability: 0.3,
            seed: 11,
        },
    );
    let sc = strong_consistency(Arc::new(LengthScore), Arc::new(AlwaysValid));
    let verdict = sc.check(&run.history);
    assert!(!verdict.is_admitted(), "the contended run must violate SC");
    let sp: Vec<_> = verdict
        .violations
        .iter()
        .filter(|v| v.property == "strong-prefix")
        .collect();
    assert_eq!(sp.len(), 17, "16 detailed violations plus one summary");
    assert!(sp.last().unwrap().detail.contains("suppressed"));
    assert!(sp.last().unwrap().witnesses.is_empty());
    let sc_ref = strong_consistency_reference(Arc::new(LengthScore), Arc::new(AlwaysValid));
    assert_eq!(verdict, sc_ref.check(&run.history));
}
