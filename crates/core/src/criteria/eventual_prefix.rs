//! The Eventual Prefix property (Definition 3.3).
//!
//! For every read `r` returning a chain of score `s`, among the reads that
//! respond after `r` only finitely many *pairs* may disagree below `s`
//! (maximal common prefix score `< s`).  Intuitively: forks may coexist for
//! a finite interval, but for every cut of the history (the score of some
//! returned chain) all participants eventually adopt a common branch at
//! least up to that score.
//!
//! ## Finite-trace interpretation
//!
//! Over a recorded execution the checker verifies that divergence below `s`
//! has been *resolved by the end of the trace*: for every read `r` with
//! score `s`, the **last** read of every process that still reads after `r`
//! must pairwise share a common prefix of score at least `s`.  Reads whose
//! score cannot yet have stabilised (those among the last
//! [`EventualPrefix::ignore_last`] reads of the trace) may be excluded as
//! reference points; the protocol simulations end with a quiescent round so
//! the default of `0` is sound there.

use std::collections::HashMap;
use std::sync::Arc;

use btadt_history::{ConsistencyCriterion, Verdict};
use btadt_types::{NodeIdx, Score};

use crate::criteria::CappedViolations;
use crate::ops::{BtHistory, BtHistoryExt, BtOperation, BtResponse};
use crate::reachability::ReachForest;

/// Checks the Eventual Prefix property under a given score function.
pub struct EventualPrefix {
    score: Arc<dyn Score>,
    ignore_last: usize,
    use_index: bool,
}

impl EventualPrefix {
    /// Creates the property; every read is used as a reference point.
    pub fn new(score: Arc<dyn Score>) -> Self {
        EventualPrefix {
            score,
            ignore_last: 0,
            use_index: true,
        }
    }

    /// Creates the property ignoring the last `ignore_last` reads of the
    /// trace as reference points (they are still used as evidence of later
    /// convergence).
    pub fn ignoring_last(score: Arc<dyn Score>, ignore_last: usize) -> Self {
        EventualPrefix {
            score,
            ignore_last,
            use_index: true,
        }
    }

    /// Creates the property in reference mode: every `mcps` is recomputed
    /// by zipping the chains, the executable spec the indexed path is
    /// tested against.
    pub fn reference(score: Arc<dyn Score>) -> Self {
        EventualPrefix {
            score,
            ignore_last: 0,
            use_index: false,
        }
    }

    /// The shared checker body.  `forest` carries the interned read chains
    /// when the indexed path is active: identical tip pairs then share one
    /// memoized `mcps` computation instead of re-zipping the chains for
    /// every reference read (`mcps` is deterministic in its two chains, and
    /// equal tips mean positionally identical chains, so memoization cannot
    /// change any verdict).
    fn check_with(&self, history: &BtHistory, forest: Option<&ReachForest>) -> Verdict {
        let reads = history.reads();
        let mut violations = CappedViolations::new("eventual-prefix");
        let reference_count = reads.len().saturating_sub(self.ignore_last);
        let mut mcps_cache: HashMap<(NodeIdx, NodeIdx), u64> = HashMap::new();

        for (i, (r, chain)) in reads.iter().enumerate().take(reference_count) {
            let s = self.score.score(chain);
            // For each process, its last read that responds after r.
            let mut finals: Vec<(usize, &crate::ops::BtRecord, &btadt_types::Blockchain)> =
                Vec::new();
            for p in history.processes() {
                let last_after = reads
                    .iter()
                    .enumerate()
                    .filter(|(j, (other, _))| {
                        *j != i && other.process == p && history.program_order(r, other)
                    })
                    .map(|(j, (rec, c))| (j, *rec, *c))
                    .next_back();
                if let Some(found) = last_after {
                    finals.push(found);
                }
            }
            // Every pair of final reads must share a prefix of score ≥ s.
            for a in 0..finals.len() {
                for b in (a + 1)..finals.len() {
                    let (ja, ra, ca) = finals[a];
                    let (jb, rb, cb) = finals[b];
                    let m = match forest {
                        Some(forest) => {
                            let ta = forest.tip(ja);
                            let tb = forest.tip(jb);
                            let key = (ta.min(tb), ta.max(tb));
                            *mcps_cache
                                .entry(key)
                                .or_insert_with(|| self.score.mcps(ca, cb))
                        }
                        None => self.score.mcps(ca, cb),
                    };
                    if m < s {
                        violations.push_with(vec![r.id, ra.id, rb.id], || {
                            format!(
                                "reference read has score {s} but the final reads of {} and {} \
                                 only share a prefix of score {m}",
                                ra.process, rb.process
                            )
                        });
                    }
                }
            }
        }
        Verdict::from_violations(violations.finish())
    }
}

impl ConsistencyCriterion<BtOperation, BtResponse> for EventualPrefix {
    fn check(&self, history: &BtHistory) -> Verdict {
        if !self.use_index {
            return self.check_with(history, None);
        }
        let reads = history.reads();
        match ReachForest::from_chains(reads.iter().map(|(_, c)| *c)) {
            Some(forest) => self.check_with(history, Some(&forest)),
            None => self.check_with(history, None),
        }
    }

    fn name(&self) -> &'static str {
        "eventual-prefix"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btadt_history::ProcessId;
    use btadt_types::workload::Workload;
    use btadt_types::{Blockchain, LengthScore};

    use crate::ops::BtRecorder;

    fn prop() -> EventualPrefix {
        EventualPrefix::new(Arc::new(LengthScore))
    }

    fn read(rec: &mut BtRecorder, p: u32, chain: Blockchain) {
        rec.instantaneous(ProcessId(p), BtOperation::Read, BtResponse::Chain(chain));
    }

    /// Two branches of length 2 over a common prefix of length 1, plus a
    /// longer continuation of branch 0 used as the convergence target.
    fn forked_chains() -> (Blockchain, Blockchain, Blockchain) {
        let mut w = Workload::new(9);
        let tree = w.forked_tree(1, 2, 2);
        let chains = tree.all_chains();
        let a = chains[0].clone();
        let b = chains[1].clone();
        // Convergence target: extend branch a by two more blocks.
        let mut target = a.clone();
        for n in 0..2 {
            let blk = btadt_types::BlockBuilder::new(target.tip())
                .nonce(1_000 + n)
                .build();
            target = target.extended_with(blk).unwrap();
        }
        (a, b, target)
    }

    #[test]
    fn temporary_divergence_that_converges_is_admitted() {
        let (a, b, target) = forked_chains();
        let mut rec = BtRecorder::new();
        // i and j first observe diverging branches (scores 3 and 3, mcps 1)...
        read(&mut rec, 0, a);
        read(&mut rec, 1, b);
        // ...but both finally adopt the same longer branch.
        read(&mut rec, 0, target.clone());
        read(&mut rec, 1, target);
        assert!(prop().admits(&rec.into_history()));
    }

    #[test]
    fn persistent_divergence_is_rejected() {
        let (a, b, _) = forked_chains();
        let mut rec = BtRecorder::new();
        read(&mut rec, 0, a.clone());
        read(&mut rec, 1, b.clone());
        // They never converge: final reads still diverge below score 3.
        read(&mut rec, 0, a);
        read(&mut rec, 1, b);
        let verdict = prop().check(&rec.into_history());
        assert!(!verdict.is_admitted());
        assert!(verdict.violations[0].detail.contains("share a prefix"));
        assert_eq!(verdict.violations[0].witnesses.len(), 3);
    }

    #[test]
    fn divergence_above_the_reference_score_is_allowed() {
        // The reference read has score 1 (the common prefix); later reads
        // may diverge in their suffixes as long as they agree up to score 1.
        let (a, b, _) = forked_chains();
        let common = a.common_prefix(&b);
        assert_eq!(common.len() - 1, 1);
        let mut rec = BtRecorder::new();
        read(&mut rec, 0, common);
        read(&mut rec, 0, a);
        read(&mut rec, 1, b);
        assert!(prop().admits(&rec.into_history()));
    }

    #[test]
    fn single_process_histories_are_trivially_admitted() {
        let (a, b, _) = forked_chains();
        let mut rec = BtRecorder::new();
        read(&mut rec, 0, a);
        read(&mut rec, 0, b);
        // Only one process: there is never a *pair* of diverging final reads.
        assert!(prop().admits(&rec.into_history()));
    }

    #[test]
    fn ignoring_last_reads_relaxes_the_reference_set() {
        let (a, b, _) = forked_chains();
        let mut rec = BtRecorder::new();
        read(&mut rec, 0, a.clone());
        read(&mut rec, 1, b.clone());
        read(&mut rec, 0, a);
        read(&mut rec, 1, b);
        let h = rec.into_history();
        assert!(!prop().admits(&h));
        // Ignoring all four reads as reference points admits the history.
        assert!(EventualPrefix::ignoring_last(Arc::new(LengthScore), 4).admits(&h));
    }

    #[test]
    fn strong_prefix_compatible_history_is_also_eventual_prefix() {
        // Sanity check for Theorem 3.1's direction SC ⊆ EC on a concrete
        // history: prefix-compatible reads trivially converge.
        let mut w = Workload::new(10);
        let chain = w.linear_chain(6, 0);
        let mut rec = BtRecorder::new();
        for k in 1..=6 {
            read(&mut rec, (k % 3) as u32, chain.truncated(k));
        }
        assert!(prop().admits(&rec.into_history()));
    }
}
