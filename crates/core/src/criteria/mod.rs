//! BT consistency criteria (Section 3.1.2).
//!
//! The paper defines two criteria as conjunctions of properties over
//! concurrent histories of the BT-ADT:
//!
//! * **BT Strong Consistency** (Definition 3.2) =
//!   Block Validity ∧ Local Monotonic Read ∧ Strong Prefix ∧ Ever-Growing Tree;
//! * **BT Eventual Consistency** (Definition 3.4) =
//!   Block Validity ∧ Local Monotonic Read ∧ Ever-Growing Tree ∧ Eventual Prefix.
//!
//! Theorem 3.1 (SC ⊂ EC) is exercised by the hierarchy experiments and by
//! the property tests in `crates/core/tests/`.
//!
//! ## Finite-history interpretation
//!
//! Ever-Growing Tree and Eventual Prefix quantify over *infinite* histories
//! ("the set of reads that … is finite").  Recorded executions are finite,
//! so the checkers implement the standard finite-trace reading, documented
//! on each property: growth/convergence must be *witnessed by the end of
//! the trace*, with a configurable grace window for operations too close to
//! the end of the recording to have had a chance to observe it.  The
//! protocol simulations always end with a quiescent round so that the grace
//! window can be zero.

mod block_validity;
mod eventual_prefix;
mod ever_growing;
mod local_monotonic;
mod strong_prefix;

pub use block_validity::{appended_block_ids, BlockValidity};
pub use eventual_prefix::EventualPrefix;
pub use ever_growing::EverGrowingTree;
pub use local_monotonic::LocalMonotonicRead;
pub use strong_prefix::StrongPrefix;

use std::sync::Arc;

use btadt_history::Conjunction;
use btadt_types::{Score, ValidityPredicate};

use crate::ops::{BtOperation, BtResponse};

/// A consistency criterion over BT histories.
pub type BtCriterion = Conjunction<BtOperation, BtResponse>;

/// Builds the **BT Strong Consistency** criterion (Definition 3.2) for the
/// given score function and validity predicate.
pub fn strong_consistency(
    score: Arc<dyn Score>,
    validity: Arc<dyn ValidityPredicate>,
) -> BtCriterion {
    Conjunction::named("BT Strong Consistency")
        .and(BlockValidity::new(validity))
        .and(LocalMonotonicRead::new(score.clone()))
        .and(StrongPrefix::new())
        .and(EverGrowingTree::new(score))
}

/// Builds the **BT Eventual Consistency** criterion (Definition 3.4) for the
/// given score function and validity predicate.
pub fn eventual_consistency(
    score: Arc<dyn Score>,
    validity: Arc<dyn ValidityPredicate>,
) -> BtCriterion {
    Conjunction::named("BT Eventual Consistency")
        .and(BlockValidity::new(validity))
        .and(LocalMonotonicRead::new(score.clone()))
        .and(EverGrowingTree::new(score.clone()))
        .and(EventualPrefix::new(score))
}

#[cfg(test)]
mod tests {
    use super::*;
    use btadt_types::{AlwaysValid, LengthScore};

    #[test]
    fn strong_consistency_has_four_properties() {
        let sc = strong_consistency(Arc::new(LengthScore), Arc::new(AlwaysValid));
        assert_eq!(sc.len(), 4);
        assert_eq!(
            sc.part_names(),
            vec![
                "block-validity",
                "local-monotonic-read",
                "strong-prefix",
                "ever-growing-tree"
            ]
        );
    }

    #[test]
    fn eventual_consistency_has_four_properties() {
        let ec = eventual_consistency(Arc::new(LengthScore), Arc::new(AlwaysValid));
        assert_eq!(ec.len(), 4);
        assert_eq!(
            ec.part_names(),
            vec![
                "block-validity",
                "local-monotonic-read",
                "ever-growing-tree",
                "eventual-prefix"
            ]
        );
    }
}
