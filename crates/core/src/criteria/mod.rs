//! BT consistency criteria (Section 3.1.2).
//!
//! The paper defines two criteria as conjunctions of properties over
//! concurrent histories of the BT-ADT:
//!
//! * **BT Strong Consistency** (Definition 3.2) =
//!   Block Validity ∧ Local Monotonic Read ∧ Strong Prefix ∧ Ever-Growing Tree;
//! * **BT Eventual Consistency** (Definition 3.4) =
//!   Block Validity ∧ Local Monotonic Read ∧ Ever-Growing Tree ∧ Eventual Prefix.
//!
//! Theorem 3.1 (SC ⊂ EC) is exercised by the hierarchy experiments and by
//! the property tests in `crates/core/tests/`.
//!
//! ## Finite-history interpretation
//!
//! Ever-Growing Tree and Eventual Prefix quantify over *infinite* histories
//! ("the set of reads that … is finite").  Recorded executions are finite,
//! so the checkers implement the standard finite-trace reading, documented
//! on each property: growth/convergence must be *witnessed by the end of
//! the trace*, with a configurable grace window for operations too close to
//! the end of the recording to have had a chance to observe it.  The
//! protocol simulations always end with a quiescent round so that the grace
//! window can be zero.

mod block_validity;
mod eventual_prefix;
mod ever_growing;
mod local_monotonic;
mod strong_prefix;

pub use block_validity::{appended_block_ids, BlockValidity};
pub use eventual_prefix::EventualPrefix;
pub use ever_growing::EverGrowingTree;
pub use local_monotonic::LocalMonotonicRead;
pub use strong_prefix::StrongPrefix;

use std::sync::Arc;

use btadt_history::{Conjunction, OpId, Violation};
use btadt_types::{Score, ValidityPredicate};

use crate::ops::{BtOperation, BtResponse};

/// How many fully-formatted violations a property reports before it folds
/// the remainder into one summary entry.
///
/// Contended histories can produce thousands of pairwise violations, and
/// eagerly `format!`-ing two whole chains per pair dominated the old SC
/// checker's cost (~80% of its 1.9 ms on the bench history).  Capping keeps
/// verdicts actionable — the first violations carry full detail, the
/// summary carries the count — without changing `is_admitted` (a capped
/// verdict is non-empty iff the uncapped one is).  The walk-based reference
/// checkers apply the same cap, so index and reference verdicts stay
/// byte-identical.
pub(crate) const DETAIL_CAP: usize = 16;

/// Accumulates violations under [`DETAIL_CAP`]: the first `DETAIL_CAP`
/// entries are materialized (details formatted lazily, so suppressed
/// entries never pay the formatting cost), the rest are counted and folded
/// into one summary violation by [`finish`](CappedViolations::finish).
pub(crate) struct CappedViolations {
    property: &'static str,
    violations: Vec<Violation>,
    suppressed: usize,
}

impl CappedViolations {
    pub(crate) fn new(property: &'static str) -> Self {
        CappedViolations {
            property,
            violations: Vec::new(),
            suppressed: 0,
        }
    }

    /// Records one violation; `detail` is only rendered below the cap.
    pub(crate) fn push_with(&mut self, witnesses: Vec<OpId>, detail: impl FnOnce() -> String) {
        if self.violations.len() < DETAIL_CAP {
            self.violations.push(Violation {
                property: self.property,
                witnesses,
                detail: detail(),
            });
        } else {
            self.suppressed += 1;
        }
    }

    pub(crate) fn finish(mut self) -> Vec<Violation> {
        if self.suppressed > 0 {
            self.violations.push(Violation {
                property: self.property,
                witnesses: Vec::new(),
                detail: format!(
                    "{} further {} violations suppressed (showing the first {DETAIL_CAP})",
                    self.suppressed, self.property
                ),
            });
        }
        self.violations
    }
}

/// A consistency criterion over BT histories.
pub type BtCriterion = Conjunction<BtOperation, BtResponse>;

/// Builds the **BT Strong Consistency** criterion (Definition 3.2) for the
/// given score function and validity predicate.
pub fn strong_consistency(
    score: Arc<dyn Score>,
    validity: Arc<dyn ValidityPredicate>,
) -> BtCriterion {
    Conjunction::named("BT Strong Consistency")
        .and(BlockValidity::new(validity))
        .and(LocalMonotonicRead::new(score.clone()))
        .and(StrongPrefix::new())
        .and(EverGrowingTree::new(score))
}

/// Builds the **BT Eventual Consistency** criterion (Definition 3.4) for the
/// given score function and validity predicate.
pub fn eventual_consistency(
    score: Arc<dyn Score>,
    validity: Arc<dyn ValidityPredicate>,
) -> BtCriterion {
    Conjunction::named("BT Eventual Consistency")
        .and(BlockValidity::new(validity))
        .and(LocalMonotonicRead::new(score.clone()))
        .and(EverGrowingTree::new(score.clone()))
        .and(EventualPrefix::new(score))
}

/// [`strong_consistency`] with every property in **reference mode**: the
/// chain-walking implementations kept as the executable spec.  The
/// equivalence tests assert this conjunction and the default (index-based)
/// one produce byte-identical verdicts on every history.
pub fn strong_consistency_reference(
    score: Arc<dyn Score>,
    validity: Arc<dyn ValidityPredicate>,
) -> BtCriterion {
    Conjunction::named("BT Strong Consistency")
        .and(BlockValidity::reference(validity))
        .and(LocalMonotonicRead::new(score.clone()))
        .and(StrongPrefix::reference())
        .and(EverGrowingTree::new(score))
}

/// [`eventual_consistency`] with every property in **reference mode** (see
/// [`strong_consistency_reference`]).
pub fn eventual_consistency_reference(
    score: Arc<dyn Score>,
    validity: Arc<dyn ValidityPredicate>,
) -> BtCriterion {
    Conjunction::named("BT Eventual Consistency")
        .and(BlockValidity::reference(validity))
        .and(LocalMonotonicRead::new(score.clone()))
        .and(EverGrowingTree::new(score.clone()))
        .and(EventualPrefix::reference(score))
}

#[cfg(test)]
mod tests {
    use super::*;
    use btadt_types::{AlwaysValid, LengthScore};

    #[test]
    fn strong_consistency_has_four_properties() {
        let sc = strong_consistency(Arc::new(LengthScore), Arc::new(AlwaysValid));
        assert_eq!(sc.len(), 4);
        assert_eq!(
            sc.part_names(),
            vec![
                "block-validity",
                "local-monotonic-read",
                "strong-prefix",
                "ever-growing-tree"
            ]
        );
    }

    #[test]
    fn eventual_consistency_has_four_properties() {
        let ec = eventual_consistency(Arc::new(LengthScore), Arc::new(AlwaysValid));
        assert_eq!(ec.len(), 4);
        assert_eq!(
            ec.part_names(),
            vec![
                "block-validity",
                "local-monotonic-read",
                "ever-growing-tree",
                "eventual-prefix"
            ]
        );
    }
}
