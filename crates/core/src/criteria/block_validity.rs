//! The Block Validity property (Definition 3.2, first bullet).
//!
//! Every block `b` of every blockchain returned by a `read()` must (i) be
//! valid (`b ∈ B'`, checked with the predicate `P` against the prefix of
//! the chain preceding `b`) and (ii) have been inserted with an `append(b)`
//! operation whose invocation precedes the read's response in program order.

use std::collections::HashMap;
use std::sync::Arc;

use btadt_history::{ConsistencyCriterion, Verdict};
use btadt_types::{BlockId, ValidityPredicate};

use crate::criteria::CappedViolations;
use crate::ops::{BtHistory, BtHistoryExt, BtOperation, BtRecord, BtResponse};

/// Checks the Block Validity property.
pub struct BlockValidity {
    validity: Arc<dyn ValidityPredicate>,
    use_cache: bool,
}

impl BlockValidity {
    /// Creates the property for the given validity predicate `P`.
    pub fn new(validity: Arc<dyn ValidityPredicate>) -> Self {
        BlockValidity {
            validity,
            use_cache: true,
        }
    }

    /// Creates the property in reference mode: no memoization, every block
    /// occurrence re-evaluates the predicate against a freshly materialized
    /// context.  The executable spec the cached path is tested against.
    pub fn reference(validity: Arc<dyn ValidityPredicate>) -> Self {
        BlockValidity {
            validity,
            use_cache: false,
        }
    }
}

impl ConsistencyCriterion<BtOperation, BtResponse> for BlockValidity {
    fn check(&self, history: &BtHistory) -> Verdict {
        let mut violations = CappedViolations::new("block-validity");
        let appends = history.appends();
        // Append records grouped by block id: membership tests then touch
        // only the records for that id instead of scanning every append
        // per block per read.
        let mut appends_by_id: HashMap<BlockId, Vec<&BtRecord>> = HashMap::new();
        if self.use_cache {
            for (a, b, _ok) in &appends {
                appends_by_id.entry(b.id).or_default().push(a);
            }
        }
        // A block's chain context is its ancestor path, which its structural
        // id determines (the same interning assumption the tree relies on),
        // and the predicate is deterministic — so the verdict per block is
        // memoizable across reads.
        let mut validity_cache: HashMap<BlockId, bool> = HashMap::new();

        for (read, chain) in history.reads() {
            for (idx, block) in chain.blocks().iter().enumerate() {
                if block.is_genesis() {
                    continue;
                }
                // (i) validity against the prefix preceding the block.
                let valid = if self.use_cache {
                    match validity_cache.get(&block.id) {
                        Some(&v) => v,
                        None => {
                            let context = chain.truncated(idx - 1);
                            let v = self.validity.is_valid(block, &context);
                            validity_cache.insert(block.id, v);
                            v
                        }
                    }
                } else {
                    let context = chain.truncated(idx - 1);
                    self.validity.is_valid(block, &context)
                };
                if !valid {
                    violations.push_with(vec![read.id], || {
                        format!(
                            "read returned block {} which is invalid in its chain context",
                            block.id
                        )
                    });
                }
                // (ii) the block was appended, and the append's invocation
                // precedes this read's response (e_inv(append) ↗ e_rsp(read)).
                let precedes = |a: &BtRecord| {
                    a.invoked_at < read.responded_at.unwrap_or(a.invoked_at)
                        || (a.process == read.process && a.seq < read.seq)
                };
                let appended_before = if self.use_cache {
                    appends_by_id
                        .get(&block.id)
                        .is_some_and(|records| records.iter().any(|a| precedes(a)))
                } else {
                    appends
                        .iter()
                        .any(|(a, b, _ok)| b.id == block.id && precedes(a))
                };
                if !appended_before {
                    violations.push_with(vec![read.id], || {
                        format!(
                            "read returned block {} with no preceding append({}) invocation",
                            block.id, block.id
                        )
                    });
                }
            }
        }
        Verdict::from_violations(violations.finish())
    }

    fn name(&self) -> &'static str {
        "block-validity"
    }
}

/// Convenience used by tests and the protocol classifier: the set of block
/// ids ever appended successfully in a history.
pub fn appended_block_ids(history: &BtHistory) -> Vec<BlockId> {
    let mut ids: Vec<BlockId> = history
        .appends()
        .into_iter()
        .filter(|(_, _, ok)| *ok)
        .map(|(_, b, _)| b.id)
        .collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use btadt_history::ProcessId;
    use btadt_types::{AlwaysValid, Block, BlockBuilder, Blockchain, MaxPayload, Transaction};

    use crate::ops::BtRecorder;

    fn prop() -> BlockValidity {
        BlockValidity::new(Arc::new(AlwaysValid))
    }

    #[test]
    fn read_of_appended_valid_block_is_admitted() {
        let mut rec = BtRecorder::new();
        let b1 = BlockBuilder::new(&Block::genesis()).nonce(1).build();
        let chain = Blockchain::genesis_only()
            .extended_with(b1.clone())
            .unwrap();
        rec.instantaneous(
            ProcessId(0),
            BtOperation::Append(b1),
            BtResponse::Appended(true),
        );
        rec.instantaneous(ProcessId(1), BtOperation::Read, BtResponse::Chain(chain));
        assert!(prop().admits(&rec.into_history()));
    }

    #[test]
    fn read_of_never_appended_block_is_rejected() {
        let mut rec = BtRecorder::new();
        let b1 = BlockBuilder::new(&Block::genesis()).nonce(1).build();
        let chain = Blockchain::genesis_only().extended_with(b1).unwrap();
        rec.instantaneous(ProcessId(0), BtOperation::Read, BtResponse::Chain(chain));
        let verdict = prop().check(&rec.into_history());
        assert!(!verdict.is_admitted());
        assert!(verdict.violations[0].detail.contains("no preceding append"));
    }

    #[test]
    fn read_of_block_appended_later_is_rejected() {
        let mut rec = BtRecorder::new();
        let b1 = BlockBuilder::new(&Block::genesis()).nonce(1).build();
        let chain = Blockchain::genesis_only()
            .extended_with(b1.clone())
            .unwrap();
        // read at p0 happens strictly before the append at p1
        rec.instantaneous(ProcessId(0), BtOperation::Read, BtResponse::Chain(chain));
        rec.instantaneous(
            ProcessId(1),
            BtOperation::Append(b1),
            BtResponse::Appended(true),
        );
        assert!(!prop().admits(&rec.into_history()));
    }

    #[test]
    fn read_of_invalid_block_is_rejected_even_if_appended() {
        let prop = BlockValidity::new(Arc::new(MaxPayload::new(0)));
        let mut rec = BtRecorder::new();
        let fat = BlockBuilder::new(&Block::genesis())
            .nonce(1)
            .push_tx(Transaction::transfer(1, 1, 2, 3))
            .build();
        let chain = Blockchain::genesis_only()
            .extended_with(fat.clone())
            .unwrap();
        rec.instantaneous(
            ProcessId(0),
            BtOperation::Append(fat),
            BtResponse::Appended(true),
        );
        rec.instantaneous(ProcessId(0), BtOperation::Read, BtResponse::Chain(chain));
        let verdict = prop.check(&rec.into_history());
        assert!(!verdict.is_admitted());
        assert!(verdict.violations[0].detail.contains("invalid"));
    }

    #[test]
    fn genesis_only_reads_are_always_admitted() {
        let mut rec = BtRecorder::new();
        rec.instantaneous(
            ProcessId(0),
            BtOperation::Read,
            BtResponse::Chain(Blockchain::genesis_only()),
        );
        assert!(prop().admits(&rec.into_history()));
    }

    #[test]
    fn appended_block_ids_lists_successful_appends_only() {
        let mut rec = BtRecorder::new();
        let b1 = BlockBuilder::new(&Block::genesis()).nonce(1).build();
        let b2 = BlockBuilder::new(&Block::genesis()).nonce(2).build();
        rec.instantaneous(
            ProcessId(0),
            BtOperation::Append(b1.clone()),
            BtResponse::Appended(true),
        );
        rec.instantaneous(
            ProcessId(0),
            BtOperation::Append(b2),
            BtResponse::Appended(false),
        );
        let ids = appended_block_ids(&rec.into_history());
        assert_eq!(ids, vec![b1.id]);
    }
}
