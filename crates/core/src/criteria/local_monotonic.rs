//! The Local Monotonic Read property (Definition 3.2, second bullet).
//!
//! For every two `read()` operations `r ↦ r'` issued by the *same* process
//! (process order), the score of the blockchain returned by `r` must not
//! exceed the score of the blockchain returned by `r'`.

use std::sync::Arc;

use btadt_history::{ConsistencyCriterion, Verdict, Violation};
use btadt_types::Score;

use crate::ops::{BtHistory, BtOperation, BtResponse};

/// Checks the Local Monotonic Read property under a given score function.
pub struct LocalMonotonicRead {
    score: Arc<dyn Score>,
}

impl LocalMonotonicRead {
    /// Creates the property for the given score function.
    pub fn new(score: Arc<dyn Score>) -> Self {
        LocalMonotonicRead { score }
    }
}

impl ConsistencyCriterion<BtOperation, BtResponse> for LocalMonotonicRead {
    fn check(&self, history: &BtHistory) -> Verdict {
        let mut violations = Vec::new();
        for (process, ops) in history.by_process() {
            let reads: Vec<_> = ops
                .iter()
                .filter_map(|r| match (&r.op, r.response.as_ref()) {
                    (BtOperation::Read, Some(BtResponse::Chain(c))) => Some((*r, c)),
                    _ => None,
                })
                .collect();
            for w in reads.windows(2) {
                let (first, first_chain) = w[0];
                let (second, second_chain) = w[1];
                let s1 = self.score.score(first_chain);
                let s2 = self.score.score(second_chain);
                if s2 < s1 {
                    violations.push(Violation {
                        property: "local-monotonic-read",
                        witnesses: vec![first.id, second.id],
                        detail: format!(
                            "process {process} read score {s1} then score {s2} (score must not decrease locally)"
                        ),
                    });
                }
            }
        }
        Verdict::from_violations(violations)
    }

    fn name(&self) -> &'static str {
        "local-monotonic-read"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btadt_history::ProcessId;
    use btadt_types::{Blockchain, LengthScore};

    use crate::ops::BtRecorder;
    use btadt_types::workload::Workload;

    fn prop() -> LocalMonotonicRead {
        LocalMonotonicRead::new(Arc::new(LengthScore))
    }

    fn read(rec: &mut BtRecorder, p: u32, chain: Blockchain) {
        rec.instantaneous(ProcessId(p), BtOperation::Read, BtResponse::Chain(chain));
    }

    #[test]
    fn non_decreasing_reads_are_admitted() {
        let mut w = Workload::new(1);
        let chain = w.linear_chain(5, 0);
        let mut rec = BtRecorder::new();
        read(&mut rec, 0, chain.truncated(1));
        read(&mut rec, 0, chain.truncated(3));
        read(&mut rec, 0, chain.truncated(3));
        read(&mut rec, 0, chain.truncated(5));
        assert!(prop().admits(&rec.into_history()));
    }

    #[test]
    fn decreasing_reads_at_the_same_process_are_rejected() {
        let mut w = Workload::new(1);
        let chain = w.linear_chain(5, 0);
        let mut rec = BtRecorder::new();
        read(&mut rec, 0, chain.truncated(4));
        read(&mut rec, 0, chain.truncated(2));
        let verdict = prop().check(&rec.into_history());
        assert!(!verdict.is_admitted());
        assert_eq!(verdict.violations.len(), 1);
        assert_eq!(verdict.violations[0].witnesses.len(), 2);
    }

    #[test]
    fn decreasing_scores_across_different_processes_are_allowed() {
        let mut w = Workload::new(1);
        let chain = w.linear_chain(5, 0);
        let mut rec = BtRecorder::new();
        read(&mut rec, 0, chain.truncated(4));
        read(&mut rec, 1, chain.truncated(2));
        assert!(prop().admits(&rec.into_history()));
    }

    #[test]
    fn appends_between_reads_are_ignored() {
        let mut w = Workload::new(1);
        let chain = w.linear_chain(3, 0);
        let mut rec = BtRecorder::new();
        read(&mut rec, 0, chain.truncated(1));
        rec.instantaneous(
            ProcessId(0),
            BtOperation::Append(chain.blocks()[2].clone()),
            BtResponse::Appended(true),
        );
        read(&mut rec, 0, chain.truncated(2));
        assert!(prop().admits(&rec.into_history()));
    }

    #[test]
    fn empty_history_is_admitted() {
        assert!(prop().admits(&BtRecorder::new().into_history()));
    }
}
