//! The Ever-Growing Tree property (Definition 3.2, fourth bullet).
//!
//! In an infinite history with infinitely many appends and reads
//! (`E(a*, r*)`), for every read `r` returning a chain of score `s` the set
//! of later reads (program order) returning a score `≤ s` must be finite —
//! i.e. scores eventually grow past every value that was ever read.
//!
//! ## Finite-trace interpretation
//!
//! The property quantifies over histories with *infinitely many appends*
//! (`E(a*, r*)`): scores must outgrow every value ever read **as long as
//! appends keep coming**.  Over a recorded (finite) execution the checker
//! therefore verifies the witnessable form: for every read `r` with score
//! `s`, if at least [`EverGrowingTree::min_later_appends`] append operations
//! are invoked after `r` in program order (i.e. growth still had material to
//! come from), then at least one read after `r` must return a score strictly
//! greater than `s`.  Reads issued once appends have (almost) ceased — the
//! quiescent tail of a simulation — are exempt, exactly as histories with
//! finitely many appends are outside the property's scope.  The window
//! defaults to `2 × number of processes`.

use std::sync::Arc;

use btadt_history::{ConsistencyCriterion, Verdict, Violation};
use btadt_types::Score;

use crate::ops::{BtHistory, BtHistoryExt, BtOperation, BtResponse};

/// Checks the Ever-Growing Tree property under a given score function.
pub struct EverGrowingTree {
    score: Arc<dyn Score>,
    min_later_appends: Option<usize>,
}

impl EverGrowingTree {
    /// Creates the property with the default window
    /// (`2 × number of processes`, computed per history).
    pub fn new(score: Arc<dyn Score>) -> Self {
        EverGrowingTree {
            score,
            min_later_appends: None,
        }
    }

    /// Creates the property with an explicit window: a read is only required
    /// to observe growth if at least `window` append operations follow it.
    pub fn with_window(score: Arc<dyn Score>, window: usize) -> Self {
        EverGrowingTree {
            score,
            min_later_appends: Some(window),
        }
    }

    fn window_for(&self, history: &BtHistory) -> usize {
        self.min_later_appends
            .unwrap_or_else(|| 2 * history.processes().len().max(1))
    }
}

impl ConsistencyCriterion<BtOperation, BtResponse> for EverGrowingTree {
    fn check(&self, history: &BtHistory) -> Verdict {
        let reads = history.reads();
        let appends = history.appends();
        let window = self.window_for(history);
        let mut violations = Vec::new();

        for (i, (r, chain)) in reads.iter().enumerate() {
            let s = self.score.score(chain);
            // Appends invoked after r: the history still "has material" for
            // growth, so growth must be observed by some later read.
            let later_appends = appends
                .iter()
                .filter(|(a, _, _)| history.program_order(r, a))
                .count();
            if later_appends < window {
                continue; // quiescent tail: finitely many appends remain
            }
            let later_reads: Vec<_> = reads
                .iter()
                .enumerate()
                .filter(|(j, (other, _))| *j != i && history.program_order(r, other))
                .map(|(_, pair)| pair)
                .collect();
            let grew = later_reads
                .iter()
                .any(|(_, later_chain)| self.score.score(later_chain) > s);
            if !grew {
                violations.push(Violation {
                    property: "ever-growing-tree",
                    witnesses: vec![r.id],
                    detail: format!(
                        "read returned score {s}; {later_appends} appends followed but no later \
                         read exceeds that score"
                    ),
                });
            }
        }
        Verdict::from_violations(violations)
    }

    fn name(&self) -> &'static str {
        "ever-growing-tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btadt_history::ProcessId;
    use btadt_types::workload::Workload;
    use btadt_types::{Blockchain, LengthScore};

    use crate::ops::BtRecorder;

    fn prop(window: usize) -> EverGrowingTree {
        EverGrowingTree::with_window(Arc::new(LengthScore), window)
    }

    fn read(rec: &mut BtRecorder, p: u32, chain: Blockchain) {
        rec.instantaneous(ProcessId(p), BtOperation::Read, BtResponse::Chain(chain));
    }

    fn append(rec: &mut BtRecorder, p: u32, chain: &Blockchain, k: usize) {
        rec.instantaneous(
            ProcessId(p),
            BtOperation::Append(chain.blocks()[k].clone()),
            BtResponse::Appended(true),
        );
    }

    #[test]
    fn growing_scores_are_admitted() {
        let mut w = Workload::new(1);
        let chain = w.linear_chain(10, 0);
        let mut rec = BtRecorder::new();
        for k in 1..=10 {
            append(&mut rec, (k % 2) as u32, &chain, k);
            read(&mut rec, (k % 2) as u32, chain.truncated(k));
        }
        assert!(prop(2).admits(&rec.into_history()));
    }

    #[test]
    fn stagnating_scores_with_ongoing_appends_are_rejected() {
        let mut w = Workload::new(1);
        let chain = w.linear_chain(10, 0);
        let mut rec = BtRecorder::new();
        // The tree keeps receiving appends, yet every read keeps returning
        // the same score-3 chain: the early reads must be flagged.
        for k in 1..=8 {
            append(&mut rec, 0, &chain, k);
            read(&mut rec, 0, chain.truncated(3));
        }
        let verdict = prop(3).check(&rec.into_history());
        assert!(!verdict.is_admitted());
    }

    #[test]
    fn quiescent_tail_reads_are_exempt() {
        // Once appends stop, reads stuck at the final score are fine: the
        // history has only finitely many appends after them.
        let mut w = Workload::new(1);
        let chain = w.linear_chain(5, 0);
        let mut rec = BtRecorder::new();
        for k in 1..=5 {
            append(&mut rec, 0, &chain, k);
            read(&mut rec, 0, chain.truncated(k));
        }
        for _ in 0..10 {
            read(&mut rec, 1, chain.clone());
        }
        assert!(prop(2).admits(&rec.into_history()));
    }

    #[test]
    fn default_window_scales_with_processes() {
        let p = EverGrowingTree::new(Arc::new(LengthScore));
        let mut rec = BtRecorder::new();
        read(&mut rec, 0, Blockchain::genesis_only());
        read(&mut rec, 1, Blockchain::genesis_only());
        let h = rec.into_history();
        assert_eq!(p.window_for(&h), 4);
        // No appends at all: nothing is required.
        assert!(p.admits(&h));
    }

    #[test]
    fn growth_observed_by_any_later_read_suffices() {
        let mut w = Workload::new(1);
        let chain = w.linear_chain(6, 0);
        let mut rec = BtRecorder::new();
        read(&mut rec, 0, chain.truncated(2));
        // several appends and stagnant reads ...
        for k in 1..=4 {
            append(&mut rec, 1, &chain, k);
            read(&mut rec, 1, chain.truncated(2));
        }
        // ... and finally a read that grows past the reference score.
        read(&mut rec, 0, chain.truncated(4));
        assert!(prop(3).admits(&rec.into_history()));
    }
}
