//! The Strong Prefix property (Definition 3.2, third bullet).
//!
//! For every pair of `read()` operations in the history, one of the two
//! returned blockchains must be a prefix of the other — reads may lag but
//! their prefixes never diverge.  This is the property that separates
//! Consensus-based blockchains from proof-of-work ones (Theorem 4.8 shows
//! it cannot be guaranteed as soon as the oracle allows forks).

use btadt_history::{ConsistencyCriterion, Verdict, Violation};

use crate::ops::{BtHistory, BtHistoryExt, BtOperation, BtResponse};

/// Checks the Strong Prefix property.
#[derive(Default)]
pub struct StrongPrefix {
    _private: (),
}

impl StrongPrefix {
    /// Creates the property.
    pub fn new() -> Self {
        StrongPrefix::default()
    }
}

impl ConsistencyCriterion<BtOperation, BtResponse> for StrongPrefix {
    fn check(&self, history: &BtHistory) -> Verdict {
        let reads = history.reads();
        let mut violations = Vec::new();
        for i in 0..reads.len() {
            for j in (i + 1)..reads.len() {
                let (ri, ci) = reads[i];
                let (rj, cj) = reads[j];
                if !ci.prefix_compatible(cj) {
                    violations.push(Violation {
                        property: "strong-prefix",
                        witnesses: vec![ri.id, rj.id],
                        detail: format!(
                            "reads returned diverging chains {:?} and {:?} (neither prefixes the other)",
                            ci, cj
                        ),
                    });
                }
            }
        }
        Verdict::from_violations(violations)
    }

    fn name(&self) -> &'static str {
        "strong-prefix"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btadt_history::ProcessId;
    use btadt_types::workload::Workload;
    use btadt_types::{Blockchain, LongestChain, SelectionFunction};

    use crate::ops::BtRecorder;

    fn read(rec: &mut BtRecorder, p: u32, chain: Blockchain) {
        rec.instantaneous(ProcessId(p), BtOperation::Read, BtResponse::Chain(chain));
    }

    #[test]
    fn prefix_compatible_reads_are_admitted() {
        let mut w = Workload::new(2);
        let chain = w.linear_chain(6, 0);
        let mut rec = BtRecorder::new();
        read(&mut rec, 0, chain.truncated(2));
        read(&mut rec, 1, chain.truncated(4));
        read(&mut rec, 0, chain.truncated(6));
        assert!(StrongPrefix::new().admits(&rec.into_history()));
    }

    #[test]
    fn diverging_reads_are_rejected_with_both_witnesses() {
        let mut w = Workload::new(2);
        let tree = w.forked_tree(1, 2, 2);
        let chains = tree.all_chains();
        assert_eq!(chains.len(), 2);
        let mut rec = BtRecorder::new();
        read(&mut rec, 0, chains[0].clone());
        read(&mut rec, 1, chains[1].clone());
        let verdict = StrongPrefix::new().check(&rec.into_history());
        assert!(!verdict.is_admitted());
        assert_eq!(verdict.violations.len(), 1);
        assert_eq!(verdict.violations[0].witnesses.len(), 2);
    }

    #[test]
    fn divergence_within_a_single_process_is_also_rejected() {
        // Strong Prefix quantifies over all pairs of reads, not only reads at
        // different processes.
        let mut w = Workload::new(3);
        let tree = w.forked_tree(0, 2, 1);
        let chains = tree.all_chains();
        let mut rec = BtRecorder::new();
        read(&mut rec, 0, chains[0].clone());
        read(&mut rec, 0, chains[1].clone());
        assert!(!StrongPrefix::new().admits(&rec.into_history()));
    }

    #[test]
    fn reads_of_a_selected_chain_from_a_growing_tree_are_admitted() {
        // A single sequential writer: every read returns the chain selected
        // from a monotonically growing tree, hence prefixes never diverge
        // along a single branch.
        let mut w = Workload::new(4);
        let chain = w.linear_chain(8, 0);
        let mut tree = btadt_types::BlockTree::new();
        let f = LongestChain::new();
        let mut rec = BtRecorder::new();
        for b in chain.blocks().iter().skip(1) {
            tree.insert(b.clone()).unwrap();
            read(&mut rec, 0, f.select(&tree));
        }
        assert!(StrongPrefix::new().admits(&rec.into_history()));
    }

    #[test]
    fn history_without_reads_is_trivially_admitted() {
        let rec = BtRecorder::new();
        assert!(StrongPrefix::new().admits(&rec.into_history()));
    }
}
