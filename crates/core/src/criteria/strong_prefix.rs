//! The Strong Prefix property (Definition 3.2, third bullet).
//!
//! For every pair of `read()` operations in the history, one of the two
//! returned blockchains must be a prefix of the other — reads may lag but
//! their prefixes never diverge.  This is the property that separates
//! Consensus-based blockchains from proof-of-work ones (Theorem 4.8 shows
//! it cannot be guaranteed as soon as the oracle allows forks).
//!
//! ## Two implementations, one verdict
//!
//! The default path interns every read chain into a [`ReachForest`] and
//! decides each pair with two O(1) interval-containment checks; the
//! reference path ([`StrongPrefix::reference`]) zips the chains positionally
//! via [`Blockchain::prefix_compatible`] and is kept as the executable spec.
//! Both apply the same violation-detail cap, so the equivalence tests can
//! require byte-identical verdicts.  Histories whose chains do not form one
//! consistent tree (never produced by the BT-ADT, but checkers accept
//! arbitrary histories) make the forest construction bail and the default
//! path falls back to the reference walk.
//!
//! [`Blockchain::prefix_compatible`]: btadt_types::Blockchain::prefix_compatible

use btadt_history::{ConsistencyCriterion, Verdict};

use crate::criteria::CappedViolations;
use crate::ops::{BtHistory, BtHistoryExt, BtOperation, BtResponse};
use crate::reachability::ReachForest;

/// Checks the Strong Prefix property.
pub struct StrongPrefix {
    use_index: bool,
}

impl Default for StrongPrefix {
    fn default() -> Self {
        StrongPrefix::new()
    }
}

impl StrongPrefix {
    /// Creates the property (reachability-indexed pair checks).
    pub fn new() -> Self {
        StrongPrefix { use_index: true }
    }

    /// Creates the property in reference mode: positional chain zipping,
    /// the executable spec the indexed path is tested against.
    pub fn reference() -> Self {
        StrongPrefix { use_index: false }
    }

    /// The chain-walking spec: pairwise [`prefix_compatible`] zips.
    ///
    /// [`prefix_compatible`]: btadt_types::Blockchain::prefix_compatible
    fn check_walk(&self, history: &BtHistory) -> Verdict {
        let reads = history.reads();
        let mut violations = CappedViolations::new("strong-prefix");
        for i in 0..reads.len() {
            for j in (i + 1)..reads.len() {
                let (ri, ci) = reads[i];
                let (rj, cj) = reads[j];
                if !ci.prefix_compatible(cj) {
                    violations.push_with(vec![ri.id, rj.id], || {
                        format!(
                            "reads returned diverging chains {:?} and {:?} (neither prefixes the other)",
                            ci, cj
                        )
                    });
                }
            }
        }
        Verdict::from_violations(violations.finish())
    }
}

impl ConsistencyCriterion<BtOperation, BtResponse> for StrongPrefix {
    fn check(&self, history: &BtHistory) -> Verdict {
        if !self.use_index {
            return self.check_walk(history);
        }
        let reads = history.reads();
        let Some(forest) = ReachForest::from_chains(reads.iter().map(|(_, c)| *c)) else {
            return self.check_walk(history);
        };
        let mut violations = CappedViolations::new("strong-prefix");
        for i in 0..reads.len() {
            for j in (i + 1)..reads.len() {
                if !forest.compatible(i, j) {
                    let (ri, ci) = reads[i];
                    let (rj, cj) = reads[j];
                    violations.push_with(vec![ri.id, rj.id], || {
                        format!(
                            "reads returned diverging chains {:?} and {:?} (neither prefixes the other)",
                            ci, cj
                        )
                    });
                }
            }
        }
        Verdict::from_violations(violations.finish())
    }

    fn name(&self) -> &'static str {
        "strong-prefix"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btadt_history::ProcessId;
    use btadt_types::workload::Workload;
    use btadt_types::{Blockchain, LongestChain, SelectionFunction};

    use crate::ops::BtRecorder;

    fn read(rec: &mut BtRecorder, p: u32, chain: Blockchain) {
        rec.instantaneous(ProcessId(p), BtOperation::Read, BtResponse::Chain(chain));
    }

    #[test]
    fn prefix_compatible_reads_are_admitted() {
        let mut w = Workload::new(2);
        let chain = w.linear_chain(6, 0);
        let mut rec = BtRecorder::new();
        read(&mut rec, 0, chain.truncated(2));
        read(&mut rec, 1, chain.truncated(4));
        read(&mut rec, 0, chain.truncated(6));
        assert!(StrongPrefix::new().admits(&rec.into_history()));
    }

    #[test]
    fn diverging_reads_are_rejected_with_both_witnesses() {
        let mut w = Workload::new(2);
        let tree = w.forked_tree(1, 2, 2);
        let chains = tree.all_chains();
        assert_eq!(chains.len(), 2);
        let mut rec = BtRecorder::new();
        read(&mut rec, 0, chains[0].clone());
        read(&mut rec, 1, chains[1].clone());
        let verdict = StrongPrefix::new().check(&rec.into_history());
        assert!(!verdict.is_admitted());
        assert_eq!(verdict.violations.len(), 1);
        assert_eq!(verdict.violations[0].witnesses.len(), 2);
    }

    #[test]
    fn divergence_within_a_single_process_is_also_rejected() {
        // Strong Prefix quantifies over all pairs of reads, not only reads at
        // different processes.
        let mut w = Workload::new(3);
        let tree = w.forked_tree(0, 2, 1);
        let chains = tree.all_chains();
        let mut rec = BtRecorder::new();
        read(&mut rec, 0, chains[0].clone());
        read(&mut rec, 0, chains[1].clone());
        assert!(!StrongPrefix::new().admits(&rec.into_history()));
    }

    #[test]
    fn reads_of_a_selected_chain_from_a_growing_tree_are_admitted() {
        // A single sequential writer: every read returns the chain selected
        // from a monotonically growing tree, hence prefixes never diverge
        // along a single branch.
        let mut w = Workload::new(4);
        let chain = w.linear_chain(8, 0);
        let mut tree = btadt_types::BlockTree::new();
        let f = LongestChain::new();
        let mut rec = BtRecorder::new();
        for b in chain.blocks().iter().skip(1) {
            tree.insert(b.clone()).unwrap();
            read(&mut rec, 0, f.select(&tree));
        }
        assert!(StrongPrefix::new().admits(&rec.into_history()));
    }

    #[test]
    fn history_without_reads_is_trivially_admitted() {
        let rec = BtRecorder::new();
        assert!(StrongPrefix::new().admits(&rec.into_history()));
    }
}
