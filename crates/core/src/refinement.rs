//! The refinement `R(BT-ADT, Θ)` (Definitions 3.7/3.8, Figure 7).
//!
//! The refinement replaces the plain `append(b)` of the BT-ADT with the
//! oracle-mediated sequence
//!
//! ```text
//! getToken(b_h ← last_block(f(bt)), b_ℓ)   repeated until a token is granted
//! consumeToken(b_ℓ^{tkn_h})                 consume the token
//! {b0}⌢f(bt)|⌢_h {b_ℓ}                      concatenate if the consume succeeded
//! ```
//!
//! executed **atomically**.  With a frugal oracle of bound `k`, at most `k`
//! append operations can succeed on the same parent block, which is the
//! k-Fork-Coherence property (Theorem 3.2).  With the prodigal oracle the
//! refinement only validates blocks and any number of forks may appear.
//!
//! [`RefinedBlockTree`] drives the refinement against a local tree, records
//! the resulting BT history (for the consistency checkers) and the oracle
//! log (for the fork-coherence checker), and is the generator used by the
//! hierarchy experiments of Figures 8 and 14.

use std::sync::Arc;

use btadt_history::ProcessId;
use btadt_oracle::{OracleLog, TokenOracle};
use btadt_types::{Block, BlockBuilder, BlockTree, Blockchain, SelectionFunction, Transaction};

use crate::ops::{BtOperation, BtRecorder, BtResponse};

/// Outcome of one refined `append` operation.
#[derive(Clone, Debug, PartialEq)]
pub struct RefinementOutcome {
    /// `true` iff the block was appended (the `evaluate` function of
    /// Definition 3.7).
    pub appended: bool,
    /// The block that was stamped by the oracle (present even when the
    /// consume was rejected, for diagnostics).
    pub block: Block,
    /// Number of `getToken` invocations needed before a token was granted.
    pub get_token_attempts: u64,
}

/// A BlockTree driven through the oracle refinement.
pub struct RefinedBlockTree {
    tree: BlockTree,
    selection: Arc<dyn SelectionFunction>,
    oracle: Box<dyn TokenOracle>,
    log: OracleLog,
    recorder: BtRecorder,
}

impl RefinedBlockTree {
    /// Creates a refined BlockTree over the given selection function and
    /// oracle.
    pub fn new(selection: Arc<dyn SelectionFunction>, oracle: Box<dyn TokenOracle>) -> Self {
        RefinedBlockTree {
            tree: BlockTree::new(),
            selection,
            oracle,
            log: OracleLog::new(),
            recorder: BtRecorder::new(),
        }
    }

    /// The refined `append`: requester `requester` proposes a block carrying
    /// `payload`; the block is chained to the last block of the currently
    /// selected chain if the oracle grants and lets it consume a token.
    ///
    /// The whole sequence (token acquisition, consumption, concatenation) is
    /// executed without interleaving, as the paper requires.
    pub fn append(&mut self, requester: usize, payload: Vec<Transaction>) -> RefinementOutcome {
        // b_h ← last_block(f(bt))
        let selected = self.selection.select(&self.tree);
        let parent = selected.tip().clone();
        let candidate = BlockBuilder::new(&parent)
            .producer(requester as u32)
            .nonce(self.recorder.now().0 + 1)
            .payload(payload)
            .build();

        let op_id = self.recorder.invoke(
            ProcessId(requester as u32),
            BtOperation::Append(candidate.clone()),
        );

        // getToken* until granted, then consumeToken.
        let (grant, attempts) =
            self.oracle
                .get_token_until_granted(requester, &parent, candidate.clone());
        let outcome = self.oracle.consume_token(&grant);
        self.log.record(&grant, &outcome);

        let appended = outcome.accepted;
        if appended {
            self.tree
                .insert(grant.block.clone())
                .expect("the parent of a granted block is in the tree");
        }
        self.recorder.respond(op_id, BtResponse::Appended(appended));

        RefinementOutcome {
            appended,
            block: grant.block,
            get_token_attempts: attempts,
        }
    }

    /// The `read()` operation: `{b0}⌢f(bt)`.
    pub fn read(&mut self, requester: usize) -> Blockchain {
        let chain = self.selection.select(&self.tree);
        self.recorder.instantaneous(
            ProcessId(requester as u32),
            BtOperation::Read,
            BtResponse::Chain(chain.clone()),
        );
        chain
    }

    /// The underlying tree.
    pub fn tree(&self) -> &BlockTree {
        &self.tree
    }

    /// The fork bound of the oracle driving the refinement.
    pub fn fork_bound(&self) -> Option<usize> {
        self.oracle.fork_bound()
    }

    /// The oracle usage log collected so far.
    pub fn oracle_log(&self) -> &OracleLog {
        &self.log
    }

    /// The concurrent history recorded so far.
    pub fn history(&self) -> &crate::ops::BtHistory {
        self.recorder.history()
    }

    /// Consumes the refined tree and returns the recorded history and oracle
    /// log.
    pub fn into_parts(self) -> (crate::ops::BtHistory, OracleLog, BlockTree) {
        (self.recorder.into_history(), self.log, self.tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btadt_oracle::{
        ForkCoherenceChecker, FrugalOracle, MeritTable, OracleConfig, ProdigalOracle,
    };
    use btadt_types::LongestChain;

    use crate::ops::BtHistoryExt;

    fn always() -> OracleConfig {
        OracleConfig {
            seed: 1,
            probability_scale: 1e9,
            min_probability: 1.0,
        }
    }

    fn frugal(k: usize, n: usize) -> RefinedBlockTree {
        RefinedBlockTree::new(
            Arc::new(LongestChain::new()),
            Box::new(FrugalOracle::new(k, MeritTable::uniform(n), always())),
        )
    }

    fn prodigal(n: usize) -> RefinedBlockTree {
        RefinedBlockTree::new(
            Arc::new(LongestChain::new()),
            Box::new(ProdigalOracle::new(MeritTable::uniform(n), always())),
        )
    }

    #[test]
    fn refined_append_extends_the_selected_chain() {
        let mut rbt = frugal(1, 1);
        let out = rbt.append(0, vec![]);
        assert!(out.appended);
        assert_eq!(rbt.tree().len(), 2);
        let chain = rbt.read(0);
        assert_eq!(chain.tip().id, out.block.id);
        assert_eq!(out.get_token_attempts, 1);
    }

    #[test]
    fn frugal_k1_refinement_produces_a_single_chain() {
        let mut rbt = frugal(1, 4);
        for round in 0..20 {
            rbt.append(round % 4, vec![]);
        }
        assert_eq!(rbt.tree().max_fork_degree(), 1);
        assert_eq!(rbt.tree().height(), 20);
        assert!(ForkCoherenceChecker::frugal(1).holds(rbt.oracle_log()));
    }

    #[test]
    fn sequential_refinement_appends_always_succeed_on_fresh_parents() {
        // Sequentially, each append chains to the current tip, so even k=1
        // never rejects: each parent is used exactly once.
        let mut rbt = frugal(1, 2);
        let successes = (0..10)
            .filter(|i| rbt.append(i % 2, vec![]).appended)
            .count();
        assert_eq!(successes, 10);
    }

    #[test]
    fn forced_contention_on_one_parent_is_bounded_by_k() {
        // Force contention by replaying appends whose selected parent stays
        // the genesis block: use a selection function view where the tree is
        // not updated — simplest is to use the oracle directly; here we
        // emulate contention by resetting the tree between appends.
        let k = 2;
        let oracle = FrugalOracle::new(k, MeritTable::uniform(1), always());
        let mut oracle: Box<dyn TokenOracle> = Box::new(oracle);
        let genesis = Block::genesis();
        let mut accepted = 0;
        let mut log = OracleLog::new();
        for nonce in 0..10u64 {
            let candidate = BlockBuilder::new(&genesis).nonce(nonce).build();
            let (grant, _) = oracle.get_token_until_granted(0, &genesis, candidate);
            let outcome = oracle.consume_token(&grant);
            log.record(&grant, &outcome);
            if outcome.accepted {
                accepted += 1;
            }
        }
        assert_eq!(accepted, k);
        assert!(ForkCoherenceChecker::frugal(k).holds(&log));
        assert!(!ForkCoherenceChecker::frugal(k - 1).holds(&log));
    }

    #[test]
    fn refinement_records_history_with_appends_and_reads() {
        let mut rbt = prodigal(2);
        rbt.append(0, vec![]);
        rbt.read(1);
        rbt.append(1, vec![]);
        rbt.read(0);
        let (history, log, tree) = rbt.into_parts();
        assert_eq!(history.appends().len(), 2);
        assert_eq!(history.reads().len(), 2);
        assert_eq!(log.len(), 2);
        assert_eq!(tree.len(), 3);
    }

    #[test]
    fn prodigal_refinement_allows_unbounded_sequential_growth() {
        let mut rbt = prodigal(1);
        for _ in 0..30 {
            assert!(rbt.append(0, vec![]).appended);
        }
        assert_eq!(rbt.tree().height(), 30);
        assert_eq!(rbt.fork_bound(), None);
    }
}
