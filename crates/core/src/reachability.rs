//! Reachability over the chains of a history: a shared interval-labeled
//! union tree.
//!
//! The consistency checkers quantify over pairs of read chains — pairwise
//! `prefix_compatible` for Strong Prefix, pairwise `mcps` for Eventual
//! Prefix, pairwise divergence depth for the scenario metrics.  Walking and
//! zipping the chains makes every pair O(chain length); instead,
//! [`ReachForest`] interns all chains of a history into one
//! [`BlockTree`], whose interval-labeled reachability index (see
//! `btadt_types::reachability`) answers ancestor queries in O(1):
//!
//! * two chains are prefix-compatible ⟺ one tip is an interval-ancestor of
//!   the other — **two comparisons per pair** instead of a zip;
//! * the maximal common prefix length of two chains is found by an
//!   interval-guided **binary ascent** over one chain: `partition_point`
//!   over its blocks with the O(1) containment predicate.
//!
//! Ingestion is incremental per chain: walk backward from the tip to the
//! first block the tree already holds, verify the boundary block is
//! *identical* to the resident copy, and insert only the missing suffix.
//! Structurally inconsistent inputs — chains that disagree on their root,
//! boundary blocks whose content differs from the resident copy under the
//! same id, or suffixes the tree rejects — make construction return `None`,
//! and callers fall back to the walk-based spec checkers.  (Block ids are
//! structural hashes, so distinct blocks colliding on an id is already
//! excluded by the repo-wide interning assumption; the boundary equality
//! check is a cheap tripwire on top.)

use btadt_types::{BlockTree, Blockchain, NodeIdx};

/// All read chains of a history interned into one reachability-indexed
/// tree, with one tip per input chain (in input order).
pub struct ReachForest {
    tree: BlockTree,
    tips: Vec<NodeIdx>,
}

impl ReachForest {
    /// Builds the union tree of the given chains.  Returns `None` when the
    /// chains are not mutually consistent tree paths (disjoint roots,
    /// boundary mismatches, rejected inserts) or when there are no chains —
    /// callers then fall back to chain-walking checkers.
    pub fn from_chains<'a, I>(chains: I) -> Option<ReachForest>
    where
        I: IntoIterator<Item = &'a Blockchain>,
    {
        let chains: Vec<&Blockchain> = chains.into_iter().collect();
        let root = chains.first()?.blocks().first()?;
        // The rerooted boundary copy clears the parent pointer, so chains
        // over pruned windows intern exactly like genesis-rooted ones.
        let mut tree = BlockTree::rerooted(root.clone());
        let mut tips = Vec::with_capacity(chains.len());

        for chain in &chains {
            let blocks = chain.blocks();
            let head = &blocks[0];
            if head.id != tree.genesis().id {
                return None; // disjoint roots: not one tree
            }
            {
                let mut normalized = head.clone();
                normalized.parent = None;
                if normalized != *tree.genesis() {
                    return None;
                }
            }
            // Deepest block already interned; position 0 always is.
            let mut k = blocks.len() - 1;
            while !tree.contains(blocks[k].id) {
                k -= 1;
            }
            if k > 0 && tree.get(blocks[k].id) != Some(&blocks[k]) {
                return None; // boundary content diverges from the resident copy
            }
            for block in &blocks[k + 1..] {
                if tree.insert(block.clone()).is_err() {
                    return None;
                }
            }
            tips.push(tree.idx_of(chain.tip().id).expect("tip was interned"));
        }
        Some(ReachForest { tree, tips })
    }

    /// The underlying interval-indexed union tree.
    pub fn tree(&self) -> &BlockTree {
        &self.tree
    }

    /// The interned tip of the `i`-th input chain.
    pub fn tip(&self, i: usize) -> NodeIdx {
        self.tips[i]
    }

    /// Are the `i`-th and `j`-th input chains prefix-compatible (one a
    /// prefix of the other)?  Two O(1) containment checks.
    #[inline]
    pub fn compatible(&self, i: usize, j: usize) -> bool {
        let (a, b) = (self.tips[i], self.tips[j]);
        self.tree.is_ancestor_idx(a, b) || self.tree.is_ancestor_idx(b, a)
    }

    /// Maximal common prefix length (`Blockchain::mcp_len`) of a chain with
    /// the subtree position `other_tip`, by interval-guided binary ascent:
    /// the predicate "this block is an ancestor of `other_tip`" is monotone
    /// along the chain, so `partition_point` finds the divergence point in
    /// O(log n) containment checks.  The chain must have been interned into
    /// this forest.
    pub fn mcp_len(&self, chain: &Blockchain, other_tip: NodeIdx) -> u64 {
        let blocks = chain.blocks();
        let shared = blocks.partition_point(|block| {
            let idx = self.tree.idx_of(block.id).expect("chain was interned");
            self.tree.is_ancestor_idx(idx, other_tip)
        });
        debug_assert!(shared > 0, "interned chains share at least the root");
        (shared - 1) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btadt_types::workload::Workload;
    use btadt_types::{Block, BlockTree};

    /// Every maximal chain of a random tree, interned and compared against
    /// the positional chain operations.
    #[test]
    fn forest_agrees_with_positional_chain_operations() {
        for seed in [2u64, 19, 64] {
            let tree = Workload::new(seed).random_tree(80, 0.5, 0);
            let chains = tree.all_chains();
            let forest = ReachForest::from_chains(chains.iter()).expect("consistent chains");
            for i in 0..chains.len() {
                for j in 0..chains.len() {
                    assert_eq!(
                        forest.compatible(i, j),
                        chains[i].prefix_compatible(&chains[j]),
                        "seed {seed}: compatibility of chains {i},{j}"
                    );
                    assert_eq!(
                        forest.mcp_len(&chains[i], forest.tip(j)),
                        chains[i].mcp_len(&chains[j]),
                        "seed {seed}: mcp_len of chains {i},{j}"
                    );
                }
            }
        }
    }

    #[test]
    fn duplicate_and_nested_chains_intern_once() {
        let mut w = Workload::new(4);
        let chain = w.linear_chain(10, 0);
        let prefix = chain.truncated(4);
        let forest =
            ReachForest::from_chains([&chain, &prefix, &chain]).expect("consistent chains");
        assert_eq!(forest.tree().len(), chain.len());
        assert!(forest.compatible(0, 1));
        assert!(forest.compatible(1, 2));
        assert_eq!(forest.tip(0), forest.tip(2));
        assert_eq!(forest.mcp_len(&prefix, forest.tip(0)), 4);
    }

    #[test]
    fn disjoint_roots_refuse_to_build() {
        let mut w = Workload::new(6);
        let genesis_chain = w.linear_chain(3, 0);
        // A chain over a pruned window: rooted at a non-genesis block.
        let mut full = BlockTree::new();
        let a = w.block_on(full.genesis(), 0, 0, 1);
        full.insert(a.clone()).unwrap();
        let mut window = BlockTree::rerooted(a.clone());
        let b = w.block_on(&a, 0, 0, 1);
        window.insert(b.clone()).unwrap();
        let window_chain = window.chain_to(b.id).unwrap();
        assert!(ReachForest::from_chains([&genesis_chain, &window_chain]).is_none());
        // Alone, the window chain interns fine (rebased root).
        assert!(ReachForest::from_chains([&window_chain]).is_some());
    }

    #[test]
    fn forged_boundary_content_refuses_to_build() {
        // Two "chains" that agree on an id but not on the block content at
        // the boundary: construction must bail rather than mislabel.
        let chain = Workload::new(8).linear_chain(4, 0);
        let mut forged_blocks: Vec<Block> = chain.blocks().to_vec();
        let tampered = forged_blocks.last_mut().unwrap();
        tampered.work += 1; // same id field only if we keep it — force it:
        let kept_id = chain.tip().id;
        tampered.id = kept_id;
        let forged = Blockchain::from_blocks_trusted(forged_blocks);
        assert!(ReachForest::from_chains([&chain, &forged]).is_none());
    }

    #[test]
    fn no_chains_yields_none() {
        assert!(ReachForest::from_chains(std::iter::empty::<&Blockchain>()).is_none());
    }

    #[test]
    fn genesis_only_chains_build_a_trivial_forest() {
        let g = Blockchain::genesis_only();
        let forest = ReachForest::from_chains([&g, &g]).unwrap();
        assert!(forest.compatible(0, 1));
        assert_eq!(forest.mcp_len(&g, forest.tip(1)), 0);
    }
}
