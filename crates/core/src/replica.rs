//! Replicated BlockTree processes (Section 4.2).
//!
//! In the message-passing model the BlockTree is a shared object replicated
//! at every process: `bt_i` is the local copy at process `i`.  A locally
//! generated block is applied with `update_i(b_g, b_i)`, communicated with
//! `send_i(b_g, b_i)`, and applied remotely after a `receive_j(b_g, b_i)`.
//!
//! [`ReplicatedRun`] orchestrates a set of [`BtReplica`]s with *direct*
//! (simulator-free) message delivery under the caller's control — including
//! deliberately dropping or delaying deliveries — which is exactly what the
//! impossibility/necessity experiments need (Lemmas 4.4/4.5, Theorems
//! 4.6–4.8).  The richer network models (delays, partial synchrony, loss,
//! Byzantine behaviour) live in `btadt-netsim` and are exercised by the
//! protocol models in `btadt-protocols`.

use std::sync::Arc;

use btadt_history::{ProcessId, Timestamp};
use btadt_types::{Block, BlockBuilder, BlockTree, Blockchain, SelectionFunction, Transaction};

use crate::ops::{BtHistory, BtOperation, BtRecorder, BtResponse};
use crate::update_agreement::{MessageHistory, ReplicaEvent, ReplicaEventKind};

/// A single replica: a local copy of the BlockTree plus the selection
/// function shared by all replicas.
#[derive(Clone)]
pub struct BtReplica {
    id: ProcessId,
    tree: BlockTree,
    selection: Arc<dyn SelectionFunction>,
}

impl BtReplica {
    /// Creates a replica with an empty tree.
    pub fn new(id: ProcessId, selection: Arc<dyn SelectionFunction>) -> Self {
        BtReplica {
            id,
            tree: BlockTree::new(),
            selection,
        }
    }

    /// The replica's identifier.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// The replica's local BlockTree.
    pub fn tree(&self) -> &BlockTree {
        &self.tree
    }

    /// The chain currently selected by `f` on the local tree.
    pub fn selected(&self) -> Blockchain {
        self.selection.select(&self.tree)
    }

    /// The tip of the currently selected chain (the block new blocks will be
    /// chained to).
    pub fn tip(&self) -> Block {
        self.selected().tip().clone()
    }

    /// Applies an update to the local tree.  Returns `true` iff the block
    /// was inserted (unknown parents and duplicates are ignored, mirroring
    /// how real replicas buffer or drop such updates).
    pub fn apply_update(&mut self, block: &Block) -> bool {
        self.tree.insert(block.clone()).is_ok()
    }

    /// Whether the replica's tree already contains the block.
    pub fn contains(&self, block: &Block) -> bool {
        self.tree.contains(block.id)
    }
}

/// Re-exported event types so callers only need this module.
pub type ReplicaEventRecord = ReplicaEvent;

/// A coordinated run of several replicas with caller-controlled delivery.
pub struct ReplicatedRun {
    replicas: Vec<BtReplica>,
    recorder: BtRecorder,
    messages: MessageHistory,
    clock: u64,
    next_nonce: u64,
}

impl ReplicatedRun {
    /// Creates `n` replicas sharing the same selection function.
    pub fn new(n: usize, selection: Arc<dyn SelectionFunction>) -> Self {
        assert!(n > 0, "a replicated run needs at least one replica");
        ReplicatedRun {
            replicas: (0..n)
                .map(|i| BtReplica::new(ProcessId(i as u32), selection.clone()))
                .collect(),
            recorder: BtRecorder::new(),
            messages: MessageHistory::new(),
            clock: 0,
            next_nonce: 1,
        }
    }

    fn tick(&mut self) -> Timestamp {
        self.clock += 1;
        Timestamp(self.clock)
    }

    /// Number of replicas.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Returns `true` iff the run has no replicas (never true).
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// Immutable access to a replica.
    pub fn replica(&self, i: usize) -> &BtReplica {
        &self.replicas[i]
    }

    /// Creates a new block at replica `i`, chained to the tip of its locally
    /// selected chain, applies it locally (`update_i`) and records the
    /// corresponding `send_i` event unless `suppress_send` is set (used to
    /// construct the R1-violating histories of Lemma 4.4).
    pub fn create_block(
        &mut self,
        i: usize,
        payload: Vec<Transaction>,
        suppress_send: bool,
    ) -> Block {
        let parent = self.replicas[i].tip();
        let nonce = self.next_nonce;
        self.next_nonce += 1;
        let block = BlockBuilder::new(&parent)
            .producer(i as u32)
            .nonce(nonce)
            .payload(payload)
            .build();

        // Record the append operation on the global BT history.
        let op = self
            .recorder
            .invoke(ProcessId(i as u32), BtOperation::Append(block.clone()));
        self.recorder.respond(op, BtResponse::Appended(true));

        // update_i then (optionally) send_i.
        let at = self.tick();
        self.messages.record(ReplicaEvent {
            process: ProcessId(i as u32),
            kind: ReplicaEventKind::Update {
                parent: parent.id,
                block: block.clone(),
            },
            at,
        });
        self.replicas[i].apply_update(&block);

        if !suppress_send {
            let at = self.tick();
            self.messages.record(ReplicaEvent {
                process: ProcessId(i as u32),
                kind: ReplicaEventKind::Send {
                    parent: parent.id,
                    block: block.clone(),
                },
                at,
            });
        }
        block
    }

    /// Delivers a block to replica `j`: records `receive_j` then `update_j`
    /// and applies the update to `j`'s tree.
    pub fn deliver(&mut self, j: usize, block: &Block) {
        let parent = block.parent.expect("non-genesis blocks have parents");
        let at = self.tick();
        self.messages.record(ReplicaEvent {
            process: ProcessId(j as u32),
            kind: ReplicaEventKind::Receive {
                parent,
                block: block.clone(),
            },
            at,
        });
        let at = self.tick();
        self.messages.record(ReplicaEvent {
            process: ProcessId(j as u32),
            kind: ReplicaEventKind::Update {
                parent,
                block: block.clone(),
            },
            at,
        });
        self.replicas[j].apply_update(block);
    }

    /// Delivers a block to every replica except its creator and the members
    /// of `drop` (whose delivery is lost).  The creator self-delivers first,
    /// satisfying LRC Validity.
    pub fn broadcast(&mut self, creator: usize, block: &Block, drop: &[usize]) {
        // Self-delivery (LRC validity): the creator receives its own message.
        if !drop.contains(&creator) {
            let parent = block.parent.expect("non-genesis blocks have parents");
            let at = self.tick();
            self.messages.record(ReplicaEvent {
                process: ProcessId(creator as u32),
                kind: ReplicaEventKind::Receive {
                    parent,
                    block: block.clone(),
                },
                at,
            });
        }
        for j in 0..self.replicas.len() {
            if j == creator || drop.contains(&j) {
                continue;
            }
            self.deliver(j, block);
        }
    }

    /// A `read()` at replica `i`, recorded on the global history.
    pub fn read(&mut self, i: usize) -> Blockchain {
        let chain = self.replicas[i].selected();
        self.recorder.instantaneous(
            ProcessId(i as u32),
            BtOperation::Read,
            BtResponse::Chain(chain.clone()),
        );
        chain
    }

    /// Every replica performs one read (used as the quiescent final round of
    /// the experiments).
    pub fn read_all(&mut self) -> Vec<Blockchain> {
        (0..self.replicas.len()).map(|i| self.read(i)).collect()
    }

    /// The global BT history recorded so far.
    pub fn history(&self) -> &BtHistory {
        self.recorder.history()
    }

    /// The message-passing history recorded so far.
    pub fn messages(&self) -> &MessageHistory {
        &self.messages
    }

    /// Consumes the run, returning the BT history and the message history.
    pub fn into_parts(self) -> (BtHistory, MessageHistory) {
        (self.recorder.into_history(), self.messages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use btadt_types::{LengthScore, LongestChain};

    use crate::criteria::{eventual_consistency, strong_consistency};
    use crate::update_agreement::{LightReliableCommunication, UpdateAgreement};
    use btadt_history::ConsistencyCriterion;
    use btadt_types::AlwaysValid;

    fn run(n: usize) -> ReplicatedRun {
        ReplicatedRun::new(n, Arc::new(LongestChain::new()))
    }

    #[test]
    fn replicas_start_with_empty_trees() {
        let r = run(3);
        assert_eq!(r.len(), 3);
        for i in 0..3 {
            assert!(r.replica(i).tree().is_empty());
            assert!(r.replica(i).selected().is_empty());
        }
    }

    #[test]
    fn create_and_broadcast_keeps_replicas_in_sync() {
        let mut r = run(3);
        for round in 0..5 {
            let creator = round % 3;
            let block = r.create_block(creator, vec![], false);
            r.broadcast(creator, &block, &[]);
        }
        let chains = r.read_all();
        assert!(chains.iter().all(|c| c == &chains[0]));
        assert_eq!(chains[0].height(), 5);
    }

    #[test]
    fn fully_delivered_run_satisfies_update_agreement_lrc_and_both_criteria() {
        let mut r = run(4);
        for round in 0..8 {
            let creator = round % 4;
            let block = r.create_block(creator, vec![], false);
            r.broadcast(creator, &block, &[]);
            r.read(creator);
        }
        r.read_all();
        let (history, messages) = r.into_parts();

        assert!(UpdateAgreement::all_correct(&messages).holds(&messages));
        assert!(LightReliableCommunication::all_correct(&messages).holds(&messages));

        let sc = strong_consistency(Arc::new(LengthScore), Arc::new(AlwaysValid));
        let ec = eventual_consistency(Arc::new(LengthScore), Arc::new(AlwaysValid));
        assert!(sc.admits(&history), "{}", sc.check(&history));
        assert!(ec.admits(&history), "{}", ec.check(&history));
    }

    #[test]
    fn dropped_delivery_violates_r3_and_eventual_prefix() {
        // Theorem 4.7 in action: dropping the deliveries towards replica 2
        // breaks Update Agreement, and the resulting history violates the
        // Eventual Prefix property once both sides keep reading.
        let mut r = run(3);
        for _ in 0..6 {
            let block = r.create_block(0, vec![], false);
            r.broadcast(0, &block, &[2]); // replica 2 never hears about it
            r.read(0);
            r.read(2);
        }
        r.read_all();
        let (history, messages) = r.into_parts();

        // Replica 2 never appears in the message log, so the correct set is
        // given explicitly (all three replicas are correct, one is starved).
        let correct: Vec<_> = (0..3).map(ProcessId).collect();
        let ua = UpdateAgreement::new(correct.clone());
        assert!(!ua.holds(&messages));
        assert!(ua.violations(&messages).iter().all(|v| v.rule == "R3"));
        assert!(!LightReliableCommunication::new(correct).holds(&messages));

        let ec = eventual_consistency(Arc::new(LengthScore), Arc::new(AlwaysValid));
        assert!(!ec.admits(&history));
    }

    #[test]
    fn suppressed_send_violates_r1() {
        let mut r = run(2);
        let _block = r.create_block(0, vec![], true); // update without send
        r.read_all();
        let (_, messages) = r.into_parts();
        let ua = UpdateAgreement::new(vec![ProcessId(0), ProcessId(1)]);
        let v = ua.violations(&messages);
        assert!(v.iter().any(|v| v.rule == "R1"));
        assert!(v.iter().any(|v| v.rule == "R3"));
    }

    #[test]
    fn concurrent_creations_produce_a_fork_and_break_strong_prefix() {
        // Theorem 4.8's scenario: two replicas append concurrently on the
        // same parent; reads taken before cross-delivery diverge.
        let mut r = run(2);
        let b0 = r.create_block(0, vec![], false);
        let b1 = r.create_block(1, vec![], false);
        // Reads before the deliveries: each replica sees only its own block.
        r.read(0);
        r.read(1);
        // Deliveries then happen (LRC is respected)...
        r.broadcast(0, &b0, &[]);
        r.broadcast(1, &b1, &[]);
        r.read_all();
        let (history, messages) = r.into_parts();

        assert!(UpdateAgreement::all_correct(&messages).holds(&messages));
        let sc = strong_consistency(Arc::new(LengthScore), Arc::new(AlwaysValid));
        assert!(!sc.admits(&history), "forks must break Strong Prefix");
    }

    #[test]
    fn replica_ignores_updates_with_unknown_parent() {
        let mut a = BtReplica::new(ProcessId(0), Arc::new(LongestChain::new()));
        let phantom_parent = BlockBuilder::new(&Block::genesis()).nonce(77).build();
        let orphan = BlockBuilder::new(&phantom_parent).nonce(78).build();
        assert!(!a.apply_update(&orphan));
        assert!(a.apply_update(&phantom_parent));
        assert!(
            a.apply_update(&orphan),
            "after the parent arrives it applies"
        );
        assert!(a.contains(&orphan));
        assert_eq!(a.id(), ProcessId(0));
    }
}
