//! Executable hierarchy experiments (Section 3.4 and Section 4.4).
//!
//! The paper orders the refined ADTs `R(BT-ADT_C, Θ)` by inclusion of the
//! history sets they can generate (Figures 8 and 14):
//!
//! * Theorem 3.1 — every history satisfying SC satisfies EC, and some EC
//!   history does not satisfy SC (`H_SC ⊂ H_EC`);
//! * Theorem 3.3 — `Ĥ(BT, Θ_F) ⊆ Ĥ(BT, Θ_P)`;
//! * Theorem 3.4 — `k1 ≤ k2 ⇒ Ĥ(BT, Θ_F,k1) ⊆ Ĥ(BT, Θ_F,k2)`;
//! * Theorem 4.8 — no oracle weaker than Θ_F,k=1 can generate only
//!   Strong-Prefix histories once appends are concurrent, which removes
//!   `R(BT-ADT_SC, Θ_P)` and `R(BT-ADT_SC, Θ_F,k>1)` from the hierarchy.
//!
//! The experiments generate *families of histories* by running the oracle
//! refinement under contention — several logical processes appending on
//! possibly stale views of a shared tree — and then measure the inclusions
//! on the generated families.  The benchmark harness prints the resulting
//! counts (bench groups `fig08_hierarchy_inclusions`, `fig14_impossibility`,
//! `thm31_sc_subset_ec`, `thm34_fork_bound_inclusion`).

use std::sync::Arc;

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

use btadt_history::{ConsistencyCriterion, ProcessId};
use btadt_oracle::{
    ForkCoherenceChecker, FrugalOracle, MeritTable, OracleConfig, OracleLog, ProdigalOracle,
    TokenOracle,
};
use btadt_types::{
    AlwaysValid, Block, BlockBuilder, BlockTree, LengthScore, LongestChain, SelectionFunction,
};

use crate::criteria::{eventual_consistency, strong_consistency};
use crate::ops::{BtHistory, BtOperation, BtRecorder, BtResponse};

/// Which oracle refines the BT-ADT.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OracleKind {
    /// Θ_F,k for the given `k ≥ 1`.
    Frugal(usize),
    /// Θ_P (`k = ∞`).
    Prodigal,
}

impl OracleKind {
    /// Builds the corresponding oracle for `n` equally merited processes.
    pub fn build(self, n: usize, seed: u64) -> Box<dyn TokenOracle> {
        // Token probability 1: contention, not mining latency, is what the
        // hierarchy experiments study.
        let config = OracleConfig {
            seed,
            probability_scale: 1e9,
            min_probability: 1.0,
        };
        match self {
            OracleKind::Frugal(k) => Box::new(FrugalOracle::new(k, MeritTable::uniform(n), config)),
            OracleKind::Prodigal => Box::new(ProdigalOracle::new(MeritTable::uniform(n), config)),
        }
    }

    /// Display name used in reports.
    pub fn label(self) -> String {
        match self {
            OracleKind::Frugal(k) => format!("frugal(k={k})"),
            OracleKind::Prodigal => "prodigal".to_string(),
        }
    }
}

/// Configuration of one contended refinement run.
#[derive(Clone, Copy, Debug)]
pub struct ContendedRunConfig {
    /// Number of logical processes appending and reading.
    pub processes: usize,
    /// Number of append attempts (total, round-robin over processes).
    pub rounds: usize,
    /// Probability that a process refreshes its local view to the globally
    /// selected chain before appending.  `1.0` means perfectly synchronised
    /// processes (no contention); low values create heavy contention and —
    /// with permissive oracles — forks.
    pub sync_probability: f64,
    /// Seed for the run.
    pub seed: u64,
}

impl Default for ContendedRunConfig {
    fn default() -> Self {
        ContendedRunConfig {
            processes: 4,
            rounds: 40,
            sync_probability: 0.5,
            seed: 0,
        }
    }
}

/// The artefacts of one contended run.
pub struct ContendedRun {
    /// The concurrent BT history (appends and reads of every process).
    pub history: BtHistory,
    /// The oracle usage log (for k-Fork-Coherence checks).
    pub log: OracleLog,
    /// The final shared tree.
    pub tree: BlockTree,
    /// Which oracle generated the run.
    pub oracle: OracleKind,
}

impl ContendedRun {
    /// Maximum number of successful appends on a single parent observed in
    /// the run (the empirical fork degree).
    pub fn max_forks(&self) -> usize {
        self.log
            .accepted_per_parent()
            .values()
            .copied()
            .max()
            .unwrap_or(0)
    }
}

/// Runs the oracle refinement under contention and records the history.
///
/// Each process keeps a *local view* (the tip it believes is the head of the
/// chain).  Before appending it refreshes the view with probability
/// `sync_probability`; it then asks the oracle for a token on its view's tip
/// and tries to consume it.  Successful appends extend the shared tree.
/// Every process reads after each of its attempts, and a final quiescent
/// round refreshes every view and reads once more.
pub fn run_contended(kind: OracleKind, config: ContendedRunConfig) -> ContendedRun {
    assert!(config.processes > 0, "need at least one process");
    let selection: Arc<dyn SelectionFunction> = Arc::new(LongestChain::new());
    let mut oracle = kind.build(config.processes, config.seed);
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0xdead_beef);
    let mut tree = BlockTree::new();
    let mut recorder = BtRecorder::new();
    let mut log = OracleLog::new();
    let mut local_tips: Vec<Block> = vec![tree.genesis().clone(); config.processes];
    let mut nonce = 0u64;

    for round in 0..config.rounds {
        let p = round % config.processes;
        // Optionally refresh the local view to the globally selected chain.
        if rng.gen_bool(config.sync_probability.clamp(0.0, 1.0)) {
            local_tips[p] = selection.select(&tree).tip().clone();
        }
        let parent = local_tips[p].clone();
        nonce += 1;
        let candidate = BlockBuilder::new(&parent)
            .producer(p as u32)
            .nonce(nonce)
            .build();

        let op = recorder.invoke(ProcessId(p as u32), BtOperation::Append(candidate.clone()));
        let (grant, _) = oracle.get_token_until_granted(p, &parent, candidate);
        let outcome = oracle.consume_token(&grant);
        log.record(&grant, &outcome);
        if outcome.accepted {
            tree.insert(grant.block.clone())
                .expect("granted blocks attach to known parents");
            local_tips[p] = grant.block.clone();
        }
        recorder.respond(op, BtResponse::Appended(outcome.accepted));

        // The process reads its own view of the chain.
        let view = tree
            .chain_to(local_tips[p].id)
            .expect("local tips stay inside the shared tree");
        recorder.instantaneous(
            ProcessId(p as u32),
            BtOperation::Read,
            BtResponse::Chain(view),
        );
    }

    // Quiescent final round: everyone converges on the selected chain.
    let final_chain = selection.select(&tree);
    for (p, tip) in local_tips.iter_mut().enumerate() {
        *tip = final_chain.tip().clone();
        recorder.instantaneous(
            ProcessId(p as u32),
            BtOperation::Read,
            BtResponse::Chain(final_chain.clone()),
        );
    }

    ContendedRun {
        history: recorder.into_history(),
        log,
        tree,
        oracle: kind,
    }
}

/// Result of an inclusion experiment over a family of generated runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InclusionReport {
    /// Number of runs generated.
    pub total: usize,
    /// Number of runs whose history lies in the larger family.
    pub included: usize,
    /// Number of runs witnessing strictness (in the larger family but not in
    /// the smaller one).
    pub strict_witnesses: usize,
}

impl InclusionReport {
    /// Returns `true` iff every generated run was included.
    pub fn inclusion_holds(&self) -> bool {
        self.included == self.total
    }

    /// Returns `true` iff at least one strictness witness was found.
    pub fn is_strict(&self) -> bool {
        self.strict_witnesses > 0
    }
}

/// Theorem 3.4 (and 3.3 for `k2 = None`): every history generated with
/// Θ_F,k1 respects the fork bound `k2 ≥ k1`; runs generated with the larger
/// bound can exceed `k1` (strictness witnesses).
pub fn fork_bound_inclusion(
    k1: usize,
    k2: Option<usize>,
    seeds: &[u64],
    base: ContendedRunConfig,
) -> InclusionReport {
    let mut report = InclusionReport::default();
    let upper_checker = match k2 {
        Some(k2) => ForkCoherenceChecker::frugal(k2),
        None => ForkCoherenceChecker::prodigal(),
    };
    let lower_checker = ForkCoherenceChecker::frugal(k1);

    for &seed in seeds {
        let config = ContendedRunConfig { seed, ..base };
        // Runs generated with the *smaller* bound must satisfy the larger.
        let small = run_contended(OracleKind::Frugal(k1), config);
        report.total += 1;
        if upper_checker.holds(&small.log) {
            report.included += 1;
        }
        // Runs generated with the *larger* bound may violate the smaller:
        // count the witnesses of strict inclusion.
        let large_kind = match k2 {
            Some(k2) => OracleKind::Frugal(k2),
            None => OracleKind::Prodigal,
        };
        let large = run_contended(large_kind, config);
        if !lower_checker.holds(&large.log) {
            report.strict_witnesses += 1;
        }
    }
    report
}

/// Theorem 3.1: every generated history admitted by SC is admitted by EC,
/// and some history is admitted by EC but not SC.
pub fn sc_subset_ec(
    kinds: &[OracleKind],
    seeds: &[u64],
    base: ContendedRunConfig,
) -> InclusionReport {
    let sc = strong_consistency(Arc::new(LengthScore), Arc::new(AlwaysValid));
    let ec = eventual_consistency(Arc::new(LengthScore), Arc::new(AlwaysValid));
    let mut report = InclusionReport::default();
    for &kind in kinds {
        for &seed in seeds {
            let config = ContendedRunConfig { seed, ..base };
            let run = run_contended(kind, config);
            let in_sc = sc.admits(&run.history);
            let in_ec = ec.admits(&run.history);
            report.total += 1;
            // Inclusion: SC ⊆ EC.
            if !in_sc || in_ec {
                report.included += 1;
            }
            // Strictness: EC \ SC non-empty.
            if in_ec && !in_sc {
                report.strict_witnesses += 1;
            }
        }
    }
    report
}

/// Theorem 4.8 experiment: counts, over the given seeds, how many contended
/// runs of each oracle kind violate Strong Prefix.  The frugal k=1 oracle
/// must never violate it; permissive oracles under contention must produce
/// violations (the configurations greyed out in Figure 14).
pub fn strong_prefix_violations(
    kind: OracleKind,
    seeds: &[u64],
    base: ContendedRunConfig,
) -> (usize, usize) {
    let sc = strong_consistency(Arc::new(LengthScore), Arc::new(AlwaysValid));
    let mut violating = 0;
    for &seed in seeds {
        let config = ContendedRunConfig { seed, ..base };
        let run = run_contended(kind, config);
        if !sc.admits(&run.history) {
            violating += 1;
        }
    }
    (violating, seeds.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn contended(seed: u64) -> ContendedRunConfig {
        ContendedRunConfig {
            processes: 4,
            rounds: 32,
            sync_probability: 0.2,
            seed,
        }
    }

    #[test]
    fn frugal_one_runs_produce_a_single_chain() {
        let run = run_contended(OracleKind::Frugal(1), contended(1));
        assert_eq!(run.tree.max_fork_degree(), 1);
        assert!(run.max_forks() <= 1);
        assert!(ForkCoherenceChecker::frugal(1).holds(&run.log));
    }

    #[test]
    fn prodigal_runs_under_contention_fork() {
        let run = run_contended(OracleKind::Prodigal, contended(2));
        assert!(
            run.max_forks() > 1,
            "expected forks under contention, got {}",
            run.max_forks()
        );
    }

    #[test]
    fn fork_bound_inclusion_holds_and_is_strict() {
        let seeds: Vec<u64> = (0..6).collect();
        let report = fork_bound_inclusion(1, Some(3), &seeds, contended(0));
        assert!(report.inclusion_holds(), "{report:?}");
        assert!(report.is_strict(), "{report:?}");

        let report_p = fork_bound_inclusion(2, None, &seeds, contended(0));
        assert!(report_p.inclusion_holds(), "{report_p:?}");
        assert!(report_p.is_strict(), "{report_p:?}");
    }

    #[test]
    fn sc_subset_ec_holds_with_strict_witness() {
        let seeds: Vec<u64> = (0..5).collect();
        let kinds = [OracleKind::Frugal(1), OracleKind::Prodigal];
        let report = sc_subset_ec(&kinds, &seeds, contended(0));
        assert!(report.inclusion_holds(), "{report:?}");
        assert!(report.is_strict(), "{report:?}");
    }

    #[test]
    fn strong_prefix_requires_the_frugal_k1_oracle() {
        let seeds: Vec<u64> = (0..5).collect();
        let (violations_k1, total) =
            strong_prefix_violations(OracleKind::Frugal(1), &seeds, contended(0));
        assert_eq!(violations_k1, 0, "k=1 never violates Strong Prefix");
        let (violations_p, _) =
            strong_prefix_violations(OracleKind::Prodigal, &seeds, contended(0));
        assert!(violations_p > 0, "the prodigal oracle must violate Strong Prefix under contention ({violations_p}/{total})");
        let (violations_k3, _) =
            strong_prefix_violations(OracleKind::Frugal(3), &seeds, contended(0));
        assert!(
            violations_k3 > 0,
            "k>1 also violates Strong Prefix under contention"
        );
    }

    #[test]
    fn oracle_kind_labels() {
        assert_eq!(OracleKind::Frugal(1).label(), "frugal(k=1)");
        assert_eq!(OracleKind::Prodigal.label(), "prodigal");
    }

    #[test]
    fn perfectly_synchronised_runs_satisfy_strong_consistency_even_with_prodigal() {
        // With sync_probability = 1 there is no contention: every append
        // lands on the tip of the selected chain, so even the prodigal
        // oracle yields a single chain (this is the "fault-free, perfectly
        // synchronised" corner where forks simply do not arise).
        let config = ContendedRunConfig {
            processes: 3,
            rounds: 24,
            sync_probability: 1.0,
            seed: 7,
        };
        let run = run_contended(OracleKind::Prodigal, config);
        assert_eq!(run.tree.max_fork_degree(), 1);
        let sc = strong_consistency(Arc::new(LengthScore), Arc::new(AlwaysValid));
        assert!(sc.admits(&run.history), "{}", sc.check(&run.history));
    }
}
