//! Sequential specification of the BlockTree ADT (Definition 3.1, Figure 1).
//!
//! The BT-ADT is the 6-tuple
//! `⟨A = {append(b), read()}, B = BC ∪ {true,false}, Z = BT × F × P, ξ0, τ, δ⟩`
//! with
//!
//! * `τ((bt,f,P), append(b)) = bt ∪ {b}` if `b ∈ B'`, unchanged otherwise;
//! * `τ((bt,f,P), read()) = (bt,f,P)`;
//! * `δ((bt,f,P), append(b)) = true` iff `b ∈ B'`;
//! * `δ((bt,f,P), read()) = {b0}⌢f(bt)`.
//!
//! Modelling note.  Definition 3.1 writes the post-append state as
//! `{b0}⌢f(bt)⌢{b}`; taken literally over a *sequential* execution this
//! would never create a branch, yet the paper immediately observes that "the
//! BlockTree allows at any time to create a new branch in the tree" and the
//! transition diagram of Figure 1 shows `b1` and `b2` both attached under
//! `b0`.  We therefore let `append(b)` attach `b` to the parent named inside
//! the block provided that parent is already in the tree — when the parent
//! is the tip of `f(bt)` this coincides with the literal reading, and when
//! it is not, a fork is created exactly as in the figure.  Validity is
//! checked with the predicate `P` against the chain leading to the parent.
//! The selection function `f` and the predicate `P` are parameters of the
//! ADT, fixed for the whole computation, as in the paper.

use std::sync::Arc;

use btadt_history::AbstractDataType;
use btadt_types::{
    AlwaysValid, Block, BlockTree, Blockchain, LongestChain, SelectionFunction, ValidityPredicate,
};

use crate::ops::{BtOperation, BtResponse};

/// The abstract state `(bt, f, P)` of the BT-ADT.  Since `f` and `P` never
/// change during a computation they are kept in the ADT itself; the mutable
/// part of the state is the tree.
#[derive(Clone, Debug)]
pub struct BtState {
    /// The BlockTree.
    pub tree: BlockTree,
}

impl Default for BtState {
    fn default() -> Self {
        BtState {
            tree: BlockTree::new(),
        }
    }
}

/// The BlockTree abstract data type, parameterised by a selection function
/// `f ∈ F` and a validity predicate `P`.
#[derive(Clone)]
pub struct BlockTreeAdt {
    selection: Arc<dyn SelectionFunction>,
    validity: Arc<dyn ValidityPredicate>,
}

impl BlockTreeAdt {
    /// Creates a BT-ADT with the given parameters.
    pub fn new(
        selection: impl SelectionFunction + 'static,
        validity: impl ValidityPredicate + 'static,
    ) -> Self {
        BlockTreeAdt {
            selection: Arc::new(selection),
            validity: Arc::new(validity),
        }
    }

    /// Creates a BT-ADT from shared parameters.
    pub fn from_shared(
        selection: Arc<dyn SelectionFunction>,
        validity: Arc<dyn ValidityPredicate>,
    ) -> Self {
        BlockTreeAdt {
            selection,
            validity,
        }
    }

    /// The paper's running example: longest-chain selection, every block
    /// valid.
    pub fn longest_chain() -> Self {
        BlockTreeAdt::new(LongestChain::new(), AlwaysValid)
    }

    /// The selection function `f`.
    pub fn selection(&self) -> &dyn SelectionFunction {
        self.selection.as_ref()
    }

    /// The validity predicate `P`.
    pub fn validity(&self) -> &dyn ValidityPredicate {
        self.validity.as_ref()
    }

    /// Decides `b ∈ B'` in the given state: the block's parent must be in
    /// the tree and the predicate must accept the block in the context of
    /// the chain leading to its parent.
    pub fn is_valid_in(&self, state: &BtState, block: &Block) -> bool {
        if block.is_genesis() {
            return false; // the genesis block is never re-appended
        }
        let Some(parent) = block.parent else {
            return false;
        };
        let Some(context) = state.tree.chain_to(parent) else {
            return false;
        };
        if block.height != context.height() + 1 {
            return false;
        }
        self.validity.is_valid(block, &context)
    }

    /// `read()` in the given state: `{b0}⌢f(bt)`.
    pub fn read(&self, state: &BtState) -> Blockchain {
        self.selection.select(&state.tree)
    }
}

impl AbstractDataType for BlockTreeAdt {
    type Input = BtOperation;
    type Output = BtResponse;
    type State = BtState;

    fn initial_state(&self) -> BtState {
        BtState::default()
    }

    fn transition(&self, state: &BtState, input: &BtOperation) -> BtState {
        match input {
            BtOperation::Read => state.clone(),
            BtOperation::Append(block) => {
                if self.is_valid_in(state, block) {
                    let mut next = state.clone();
                    next.tree
                        .insert(block.clone())
                        .expect("validity check guarantees insertability");
                    next
                } else {
                    state.clone()
                }
            }
        }
    }

    fn output(&self, state: &BtState, input: &BtOperation) -> BtResponse {
        match input {
            BtOperation::Read => BtResponse::Chain(self.read(state)),
            BtOperation::Append(block) => BtResponse::Appended(self.is_valid_in(state, block)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btadt_history::SequentialChecker;
    use btadt_types::{BlockBuilder, MaxPayload, NeverValid, TieBreak, Transaction};

    fn child(parent: &Block, nonce: u64) -> Block {
        BlockBuilder::new(parent).nonce(nonce).build()
    }

    #[test]
    fn initial_state_is_genesis_only_and_read_returns_b0() {
        let adt = BlockTreeAdt::longest_chain();
        let s0 = adt.initial_state();
        assert!(s0.tree.is_empty());
        assert_eq!(adt.read(&s0), Blockchain::genesis_only());
        assert_eq!(
            adt.output(&s0, &BtOperation::Read),
            BtResponse::Chain(Blockchain::genesis_only())
        );
    }

    #[test]
    fn append_of_valid_block_returns_true_and_extends_the_tree() {
        let adt = BlockTreeAdt::longest_chain();
        let s0 = adt.initial_state();
        let b1 = child(&Block::genesis(), 1);
        let (out, s1) = adt.step(&s0, &BtOperation::Append(b1.clone()));
        assert_eq!(out, BtResponse::Appended(true));
        assert_eq!(s1.tree.len(), 2);
        assert!(s1.tree.contains(b1.id));
        // read() now returns b0⌢b1
        let chain = adt.read(&s1);
        assert_eq!(chain.tip().id, b1.id);
    }

    #[test]
    fn append_of_invalid_block_returns_false_and_leaves_state_unchanged() {
        let adt = BlockTreeAdt::new(LongestChain::new(), NeverValid);
        let s0 = adt.initial_state();
        let b = child(&Block::genesis(), 1);
        let (out, s1) = adt.step(&s0, &BtOperation::Append(b));
        assert_eq!(out, BtResponse::Appended(false));
        assert_eq!(s1.tree.len(), 1);
    }

    #[test]
    fn append_with_unknown_parent_is_invalid() {
        let adt = BlockTreeAdt::longest_chain();
        let s0 = adt.initial_state();
        let orphan_parent = child(&Block::genesis(), 9);
        let orphan = child(&orphan_parent, 10); // parent not in tree
        assert_eq!(
            adt.output(&s0, &BtOperation::Append(orphan)),
            BtResponse::Appended(false)
        );
    }

    #[test]
    fn appending_genesis_again_is_invalid() {
        let adt = BlockTreeAdt::longest_chain();
        let s0 = adt.initial_state();
        assert_eq!(
            adt.output(&s0, &BtOperation::Append(Block::genesis())),
            BtResponse::Appended(false)
        );
    }

    #[test]
    fn figure_1_path_is_a_sequential_history() {
        // Figure 1: append(b1)/true, read()/b0⌢b1, append(b2)/true (fork under
        // b0), read()/b0⌢b2 with the lexicographically-largest tie-break,
        // append(b3)/false for an invalid block at every state.
        let adt = BlockTreeAdt::new(
            LongestChain::with_tie_break(TieBreak::LargestId),
            MaxPayload::new(0), // b3 carries a transaction, making it invalid
        );
        let genesis = Block::genesis();
        let b1 = child(&genesis, 1);
        let b2 = child(&genesis, 2);
        let b3 = BlockBuilder::new(&genesis)
            .nonce(3)
            .push_tx(Transaction::transfer(1, 1, 2, 1))
            .build();

        // Expected read after both appends: the tie-break picks the larger id.
        let expected_tip = if b1.id > b2.id {
            b1.clone()
        } else {
            b2.clone()
        };
        let expected_chain = Blockchain::genesis_only()
            .extended_with(expected_tip)
            .unwrap();
        let first_chain = Blockchain::genesis_only()
            .extended_with(b1.clone())
            .unwrap();

        let checker = SequentialChecker::new(adt);
        let word = vec![
            (BtOperation::Append(b3.clone()), BtResponse::Appended(false)),
            (BtOperation::Append(b1.clone()), BtResponse::Appended(true)),
            (BtOperation::Read, BtResponse::Chain(first_chain)),
            (BtOperation::Append(b2.clone()), BtResponse::Appended(true)),
            (BtOperation::Append(b3), BtResponse::Appended(false)),
            (BtOperation::Read, BtResponse::Chain(expected_chain)),
        ];
        let states = checker.check_word(&word).expect("Figure 1 path is legal");
        assert_eq!(states.last().unwrap().tree.len(), 3);
    }

    #[test]
    fn illegal_word_is_rejected_by_the_sequential_checker() {
        let adt = BlockTreeAdt::longest_chain();
        let b1 = child(&Block::genesis(), 1);
        let checker = SequentialChecker::new(adt);
        // Claiming the read returns b0⌢b1 *before* b1 is appended is illegal.
        let chain = Blockchain::genesis_only()
            .extended_with(b1.clone())
            .unwrap();
        let word = vec![
            (BtOperation::Read, BtResponse::Chain(chain)),
            (BtOperation::Append(b1), BtResponse::Appended(true)),
        ];
        let err = checker.check_word(&word).unwrap_err();
        assert_eq!(err.position, 0);
    }

    #[test]
    fn forks_are_allowed_in_the_tree() {
        let adt = BlockTreeAdt::longest_chain();
        let genesis = Block::genesis();
        let b1 = child(&genesis, 1);
        let b2 = child(&genesis, 2);
        let checker = SequentialChecker::new(adt);
        let state = checker.final_state(&[
            BtOperation::Append(b1.clone()),
            BtOperation::Append(b2.clone()),
        ]);
        assert_eq!(state.tree.fork_degree(genesis.id), 2);
    }

    #[test]
    fn read_never_changes_the_state() {
        let adt = BlockTreeAdt::longest_chain();
        let s0 = adt.initial_state();
        let s1 = adt.transition(&s0, &BtOperation::Read);
        assert_eq!(s1.tree.len(), s0.tree.len());
    }

    #[test]
    fn validity_is_checked_against_the_parent_chain_context() {
        // No-double-spend across the chain: a transaction present in the
        // parent chain invalidates a re-spending child.
        let adt = BlockTreeAdt::new(LongestChain::new(), btadt_types::NoDoubleSpend);
        let genesis = Block::genesis();
        let tx = Transaction::transfer(7, 1, 2, 10);
        let b1 = BlockBuilder::new(&genesis).nonce(1).push_tx(tx).build();
        let s1 = adt.transition(&adt.initial_state(), &BtOperation::Append(b1.clone()));
        let replay = BlockBuilder::new(&b1).nonce(2).push_tx(tx).build();
        assert_eq!(
            adt.output(&s1, &BtOperation::Append(replay)),
            BtResponse::Appended(false)
        );
        let fresh = BlockBuilder::new(&b1)
            .nonce(3)
            .push_tx(Transaction::transfer(8, 1, 2, 10))
            .build();
        assert_eq!(
            adt.output(&s1, &BtOperation::Append(fresh)),
            BtResponse::Appended(true)
        );
    }
}
