//! Update Agreement and Light Reliable Communication (Section 4.3).
//!
//! In the message-passing implementation of the BT-ADT each replica applies
//! `update_i(b_g, b_i)` operations to its local BlockTree; updates travel as
//! messages through `send_i(b_g, b)` and `receive_j(b_g, b)` events.  The
//! paper proves that the following properties are *necessary* for any
//! protocol whose histories satisfy BT Eventual Consistency (Theorem 4.6)
//! and, a fortiori, Strong Consistency (Corollary 4.6.1):
//!
//! * **R1** — every update applied at its creator is also sent;
//! * **R2** — every update applied at a remote process was received there
//!   first;
//! * **R3** — every update applied anywhere is eventually received by every
//!   (correct) process;
//!
//! and that the **Light Reliable Communication** (LRC) abstraction
//! (Definition 4.4) — Validity (a sender receives its own message) and
//! Agreement (a message received by any correct process is received by all)
//! — is likewise necessary (Theorem 4.7).
//!
//! This module provides the event log ([`MessageHistory`]) and executable
//! checkers for both property sets; the benches `fig13_update_agreement` and
//! `thm47_lrc_necessity` drive them over runs with and without message loss.

use btadt_history::{ProcessId, Timestamp};
use btadt_types::{Block, BlockId};

/// The kind of a replica event.
#[derive(Clone, Debug, PartialEq)]
pub enum ReplicaEventKind {
    /// `send_i(b_g, b)`: the replica sent the update to the network.
    Send {
        /// Parent (predecessor) block of the update.
        parent: BlockId,
        /// The block carried by the update.
        block: Block,
    },
    /// `receive_i(b_g, b)`: the replica received the update.
    Receive {
        /// Parent (predecessor) block of the update.
        parent: BlockId,
        /// The block carried by the update.
        block: Block,
    },
    /// `update_i(b_g, b)`: the replica applied the update to its local tree.
    Update {
        /// Parent (predecessor) block of the update.
        parent: BlockId,
        /// The block carried by the update.
        block: Block,
    },
}

impl ReplicaEventKind {
    /// The block id carried by the event.
    pub fn block_id(&self) -> BlockId {
        match self {
            ReplicaEventKind::Send { block, .. }
            | ReplicaEventKind::Receive { block, .. }
            | ReplicaEventKind::Update { block, .. } => block.id,
        }
    }
}

/// One replica event with its process and global-clock timestamp.
#[derive(Clone, Debug, PartialEq)]
pub struct ReplicaEvent {
    /// The process at which the event occurred.
    pub process: ProcessId,
    /// The event.
    pub kind: ReplicaEventKind,
    /// When the event occurred on the fictional global clock.
    pub at: Timestamp,
}

/// A log of send/receive/update events collected from a replicated run.
#[derive(Clone, Debug, Default)]
pub struct MessageHistory {
    events: Vec<ReplicaEvent>,
}

impl MessageHistory {
    /// Creates an empty log.
    pub fn new() -> Self {
        MessageHistory::default()
    }

    /// Records an event.
    pub fn record(&mut self, event: ReplicaEvent) {
        self.events.push(event);
    }

    /// All events in recording order.
    pub fn events(&self) -> &[ReplicaEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` iff the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All `update` events.
    pub fn updates(&self) -> impl Iterator<Item = &ReplicaEvent> {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, ReplicaEventKind::Update { .. }))
    }

    /// All `send` events.
    pub fn sends(&self) -> impl Iterator<Item = &ReplicaEvent> {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, ReplicaEventKind::Send { .. }))
    }

    /// All `receive` events.
    pub fn receives(&self) -> impl Iterator<Item = &ReplicaEvent> {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, ReplicaEventKind::Receive { .. }))
    }

    /// The processes appearing in the log, sorted.
    pub fn processes(&self) -> Vec<ProcessId> {
        let mut ps: Vec<ProcessId> = self.events.iter().map(|e| e.process).collect();
        ps.sort_unstable();
        ps.dedup();
        ps
    }

    /// Whether process `p` sent the block.
    pub fn sent_by(&self, p: ProcessId, block: BlockId) -> bool {
        self.sends()
            .any(|e| e.process == p && e.kind.block_id() == block)
    }

    /// Whether process `p` received the block, and if so when (first time).
    pub fn received_at(&self, p: ProcessId, block: BlockId) -> Option<Timestamp> {
        self.receives()
            .filter(|e| e.process == p && e.kind.block_id() == block)
            .map(|e| e.at)
            .min()
    }

    /// Whether process `p` applied the block, and if so when (first time).
    pub fn updated_at(&self, p: ProcessId, block: BlockId) -> Option<Timestamp> {
        self.updates()
            .filter(|e| e.process == p && e.kind.block_id() == block)
            .map(|e| e.at)
            .min()
    }

    /// The process that created a block: the first process to apply an update
    /// for it without receiving it first.
    pub fn creator_of(&self, block: BlockId) -> Option<ProcessId> {
        self.updates()
            .filter(|e| e.kind.block_id() == block)
            .filter(|e| {
                self.received_at(e.process, block)
                    .map(|recv| recv > e.at)
                    .unwrap_or(true)
            })
            .map(|e| e.process)
            .next()
    }
}

/// A description of a violation of a message-passing property.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MessageViolation {
    /// The violated rule ("R1", "R2", "R3", "LRC-validity", "LRC-agreement").
    pub rule: &'static str,
    /// Human-readable explanation.
    pub detail: String,
}

/// Checks the Update Agreement properties R1–R3 (Definition 4.3) restricted
/// to a set of correct processes.
#[derive(Clone, Debug)]
pub struct UpdateAgreement {
    correct: Vec<ProcessId>,
}

impl UpdateAgreement {
    /// Creates the checker for the given set of correct processes.
    pub fn new(correct: Vec<ProcessId>) -> Self {
        UpdateAgreement { correct }
    }

    /// Creates the checker treating every process of the log as correct.
    pub fn all_correct(history: &MessageHistory) -> Self {
        UpdateAgreement {
            correct: history.processes(),
        }
    }

    fn is_correct(&self, p: ProcessId) -> bool {
        self.correct.contains(&p)
    }

    /// R1: every update applied at its *creator* has a matching send at that
    /// process.
    pub fn r1_violations(&self, history: &MessageHistory) -> Vec<MessageViolation> {
        let mut violations = Vec::new();
        for e in history.updates() {
            if !self.is_correct(e.process) {
                continue;
            }
            let block = e.kind.block_id();
            // Only the creator (a process that applied the update without a
            // prior receive) is required to send it.
            let received_before = history
                .received_at(e.process, block)
                .map(|t| t <= e.at)
                .unwrap_or(false);
            if !received_before && !history.sent_by(e.process, block) {
                violations.push(MessageViolation {
                    rule: "R1",
                    detail: format!(
                        "{} applied locally-created update for {} without sending it",
                        e.process, block
                    ),
                });
            }
        }
        violations
    }

    /// R2: every update applied at a process that did *not* create the block
    /// is preceded by a receive of that block at the same process.
    pub fn r2_violations(&self, history: &MessageHistory) -> Vec<MessageViolation> {
        let mut violations = Vec::new();
        for e in history.updates() {
            if !self.is_correct(e.process) {
                continue;
            }
            let block = e.kind.block_id();
            if history.creator_of(block) == Some(e.process) {
                continue;
            }
            match history.received_at(e.process, block) {
                Some(recv) if recv <= e.at => {}
                _ => violations.push(MessageViolation {
                    rule: "R2",
                    detail: format!(
                        "{} applied update for {} without receiving it first",
                        e.process, block
                    ),
                }),
            }
        }
        violations
    }

    /// R3: every update applied anywhere is received by *every* correct
    /// process (its creator counts as trivially having it).
    pub fn r3_violations(&self, history: &MessageHistory) -> Vec<MessageViolation> {
        let mut violations = Vec::new();
        let mut updated_blocks: Vec<BlockId> =
            history.updates().map(|e| e.kind.block_id()).collect();
        updated_blocks.sort_unstable();
        updated_blocks.dedup();

        for block in updated_blocks {
            let creator = history.creator_of(block);
            for &p in &self.correct {
                if Some(p) == creator {
                    continue;
                }
                if history.received_at(p, block).is_none() {
                    violations.push(MessageViolation {
                        rule: "R3",
                        detail: format!("{} never receives the update for {}", p, block),
                    });
                }
            }
        }
        violations
    }

    /// All violations of R1–R3.
    pub fn violations(&self, history: &MessageHistory) -> Vec<MessageViolation> {
        let mut v = self.r1_violations(history);
        v.extend(self.r2_violations(history));
        v.extend(self.r3_violations(history));
        v
    }

    /// Returns `true` iff the history satisfies the Update Agreement.
    pub fn holds(&self, history: &MessageHistory) -> bool {
        self.violations(history).is_empty()
    }
}

/// Checks the Light Reliable Communication abstraction (Definition 4.4).
#[derive(Clone, Debug)]
pub struct LightReliableCommunication {
    correct: Vec<ProcessId>,
}

impl LightReliableCommunication {
    /// Creates the checker for the given set of correct processes.
    pub fn new(correct: Vec<ProcessId>) -> Self {
        LightReliableCommunication { correct }
    }

    /// Creates the checker treating every process of the log as correct.
    pub fn all_correct(history: &MessageHistory) -> Self {
        LightReliableCommunication {
            correct: history.processes(),
        }
    }

    /// LRC Validity: if a correct process sends a message it eventually
    /// receives it itself.
    pub fn validity_violations(&self, history: &MessageHistory) -> Vec<MessageViolation> {
        let mut violations = Vec::new();
        for e in history.sends() {
            if !self.correct.contains(&e.process) {
                continue;
            }
            let block = e.kind.block_id();
            if history.received_at(e.process, block).is_none() {
                violations.push(MessageViolation {
                    rule: "LRC-validity",
                    detail: format!("{} sent {} but never receives it itself", e.process, block),
                });
            }
        }
        violations
    }

    /// LRC Agreement: if *any* correct process receives a message then every
    /// correct process receives it.
    pub fn agreement_violations(&self, history: &MessageHistory) -> Vec<MessageViolation> {
        let mut violations = Vec::new();
        let mut received_blocks: Vec<BlockId> = history
            .receives()
            .filter(|e| self.correct.contains(&e.process))
            .map(|e| e.kind.block_id())
            .collect();
        received_blocks.sort_unstable();
        received_blocks.dedup();

        for block in received_blocks {
            for &p in &self.correct {
                if history.received_at(p, block).is_none() {
                    violations.push(MessageViolation {
                        rule: "LRC-agreement",
                        detail: format!(
                            "{} was received by some correct process but never by {}",
                            block, p
                        ),
                    });
                }
            }
        }
        violations
    }

    /// All LRC violations.
    pub fn violations(&self, history: &MessageHistory) -> Vec<MessageViolation> {
        let mut v = self.validity_violations(history);
        v.extend(self.agreement_violations(history));
        v
    }

    /// Returns `true` iff the history satisfies LRC.
    pub fn holds(&self, history: &MessageHistory) -> bool {
        self.violations(history).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btadt_types::BlockBuilder;

    fn block(nonce: u64) -> Block {
        BlockBuilder::new(&Block::genesis()).nonce(nonce).build()
    }

    fn ev(p: u32, at: u64, kind: ReplicaEventKind) -> ReplicaEvent {
        ReplicaEvent {
            process: ProcessId(p),
            kind,
            at: Timestamp(at),
        }
    }

    /// The history of Figure 13: i updates and sends, everyone (including i)
    /// receives, j and k update after receiving.
    fn figure_13_history() -> MessageHistory {
        let b = block(1);
        let parent = btadt_types::GENESIS_ID;
        let mut h = MessageHistory::new();
        h.record(ev(
            0,
            1,
            ReplicaEventKind::Send {
                parent,
                block: b.clone(),
            },
        ));
        h.record(ev(
            0,
            2,
            ReplicaEventKind::Update {
                parent,
                block: b.clone(),
            },
        ));
        h.record(ev(
            0,
            3,
            ReplicaEventKind::Receive {
                parent,
                block: b.clone(),
            },
        ));
        h.record(ev(
            1,
            4,
            ReplicaEventKind::Receive {
                parent,
                block: b.clone(),
            },
        ));
        h.record(ev(
            2,
            5,
            ReplicaEventKind::Receive {
                parent,
                block: b.clone(),
            },
        ));
        h.record(ev(
            1,
            6,
            ReplicaEventKind::Update {
                parent,
                block: b.clone(),
            },
        ));
        h.record(ev(2, 7, ReplicaEventKind::Update { parent, block: b }));
        h
    }

    #[test]
    fn figure_13_history_satisfies_update_agreement_and_lrc() {
        let h = figure_13_history();
        assert_eq!(h.len(), 7);
        let ua = UpdateAgreement::all_correct(&h);
        assert!(ua.holds(&h), "{:?}", ua.violations(&h));
        let lrc = LightReliableCommunication::all_correct(&h);
        assert!(lrc.holds(&h), "{:?}", lrc.violations(&h));
    }

    #[test]
    fn r1_violation_update_without_send() {
        // Lemma 4.4's construction: i applies its own update but never sends
        // it, so no other process can ever receive it.
        let b = block(1);
        let parent = btadt_types::GENESIS_ID;
        let mut h = MessageHistory::new();
        h.record(ev(0, 1, ReplicaEventKind::Update { parent, block: b }));
        let ua = UpdateAgreement::new(vec![ProcessId(0), ProcessId(1)]);
        let v = ua.r1_violations(&h);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "R1");
        assert!(!ua.holds(&h));
    }

    #[test]
    fn r2_violation_update_without_receive() {
        // j applies i's update without having received it.
        let b = block(1);
        let parent = btadt_types::GENESIS_ID;
        let mut h = MessageHistory::new();
        h.record(ev(
            0,
            1,
            ReplicaEventKind::Send {
                parent,
                block: b.clone(),
            },
        ));
        h.record(ev(
            0,
            2,
            ReplicaEventKind::Update {
                parent,
                block: b.clone(),
            },
        ));
        h.record(ev(
            0,
            3,
            ReplicaEventKind::Receive {
                parent,
                block: b.clone(),
            },
        ));
        h.record(ev(
            1,
            4,
            ReplicaEventKind::Update {
                parent,
                block: b.clone(),
            },
        ));
        h.record(ev(1, 5, ReplicaEventKind::Receive { parent, block: b })); // too late
        let ua = UpdateAgreement::all_correct(&h);
        let v = ua.r2_violations(&h);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "R2");
    }

    #[test]
    fn r3_violation_some_process_never_receives() {
        // Lemma 4.5's construction: i's update reaches j but never k.
        let b = block(1);
        let parent = btadt_types::GENESIS_ID;
        let mut h = MessageHistory::new();
        h.record(ev(
            0,
            1,
            ReplicaEventKind::Send {
                parent,
                block: b.clone(),
            },
        ));
        h.record(ev(
            0,
            2,
            ReplicaEventKind::Update {
                parent,
                block: b.clone(),
            },
        ));
        h.record(ev(
            0,
            3,
            ReplicaEventKind::Receive {
                parent,
                block: b.clone(),
            },
        ));
        h.record(ev(
            1,
            4,
            ReplicaEventKind::Receive {
                parent,
                block: b.clone(),
            },
        ));
        h.record(ev(1, 5, ReplicaEventKind::Update { parent, block: b })); // k (p2) never receives
        let ua = UpdateAgreement::new(vec![ProcessId(0), ProcessId(1), ProcessId(2)]);
        let v = ua.r3_violations(&h);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "R3");
        assert!(v[0].detail.contains("p2"));
    }

    #[test]
    fn lrc_validity_violation_sender_never_self_receives() {
        let b = block(1);
        let parent = btadt_types::GENESIS_ID;
        let mut h = MessageHistory::new();
        h.record(ev(
            0,
            1,
            ReplicaEventKind::Send {
                parent,
                block: b.clone(),
            },
        ));
        h.record(ev(1, 2, ReplicaEventKind::Receive { parent, block: b }));
        let lrc = LightReliableCommunication::new(vec![ProcessId(0), ProcessId(1)]);
        let v = lrc.validity_violations(&h);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "LRC-validity");
    }

    #[test]
    fn lrc_agreement_violation_partial_delivery() {
        // Theorem 4.7's construction: some correct process receives the
        // message, another never does.
        let b = block(1);
        let parent = btadt_types::GENESIS_ID;
        let mut h = MessageHistory::new();
        h.record(ev(
            0,
            1,
            ReplicaEventKind::Send {
                parent,
                block: b.clone(),
            },
        ));
        h.record(ev(
            0,
            2,
            ReplicaEventKind::Receive {
                parent,
                block: b.clone(),
            },
        ));
        h.record(ev(1, 3, ReplicaEventKind::Receive { parent, block: b }));
        let lrc = LightReliableCommunication::new(vec![ProcessId(0), ProcessId(1), ProcessId(2)]);
        let v = lrc.agreement_violations(&h);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "LRC-agreement");
        assert!(!lrc.holds(&h));
    }

    #[test]
    fn byzantine_processes_are_excluded_from_the_checks() {
        // p1 applies an update without receiving it, but p1 is Byzantine: the
        // checks restricted to correct processes {p0} still hold.
        let b = block(1);
        let parent = btadt_types::GENESIS_ID;
        let mut h = MessageHistory::new();
        h.record(ev(
            0,
            1,
            ReplicaEventKind::Send {
                parent,
                block: b.clone(),
            },
        ));
        h.record(ev(
            0,
            2,
            ReplicaEventKind::Update {
                parent,
                block: b.clone(),
            },
        ));
        h.record(ev(
            0,
            3,
            ReplicaEventKind::Receive {
                parent,
                block: b.clone(),
            },
        ));
        h.record(ev(1, 4, ReplicaEventKind::Update { parent, block: b }));
        let ua = UpdateAgreement::new(vec![ProcessId(0)]);
        assert!(ua.holds(&h));
    }

    #[test]
    fn creator_of_identifies_the_originating_process() {
        let h = figure_13_history();
        let block_id = h.updates().next().unwrap().kind.block_id();
        assert_eq!(h.creator_of(block_id), Some(ProcessId(0)));
        assert_eq!(h.creator_of(btadt_types::BlockId(0xdead)), None);
    }

    #[test]
    fn accessors_cover_send_receive_update() {
        let h = figure_13_history();
        assert_eq!(h.sends().count(), 1);
        assert_eq!(h.receives().count(), 3);
        assert_eq!(h.updates().count(), 3);
        assert_eq!(h.processes().len(), 3);
        assert!(!h.is_empty());
    }
}
