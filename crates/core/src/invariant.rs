//! Structural invariant checking for [`BlockTree`] instances.
//!
//! The arena-indexed tree maintains several aggregates incrementally
//! (leaf set, best tips, cumulative work).  Under fault injection — stalled
//! writers, poisoned locks healed mid-install — the cheap way to trust the
//! incremental state is to recompute it from first principles and compare.
//! [`check_block_tree`] does exactly that through the tree's *public* API,
//! so it can run against any replica (simulated, shared-memory, recovered
//! from a journal) without privileged access:
//!
//! 1. **Link consistency** — every non-genesis block's parent is present,
//!    sits exactly one height below, and lists the block among its
//!    children; child links point back at their parent.
//! 2. **Leaf-set agreement** — the incrementally maintained `leaves()`
//!    equals the set of blocks with no children, recomputed from scratch.
//! 3. **Cumulative-work monotonicity** — cumulative work strictly increases
//!    along every parent→child edge (block work is positive), and equals
//!    `parent's cumulative work + own work`.
//! 4. **Aggregate agreement** — `height()` and `max_fork_degree()` match
//!    recomputed values.
//! 5. **Reachability labeling** — every node's `[start, end)` interval nests
//!    strictly inside its parent's usable range, sibling intervals are
//!    pairwise disjoint, and allocation cursors stay in bounds, so interval
//!    containment remains a sound ancestor test (see
//!    `btadt_types::reachability`).
//!
//! Violations are reported, not panicked, so background monitor threads can
//! collect them and fail a run at the end with context.

use std::collections::{HashMap, HashSet};
use std::fmt;

use btadt_types::{Block, BlockId, BlockTree, GENESIS_ID};

/// One detected violation of a BlockTree structural invariant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Which invariant family failed (stable, machine-matchable label).
    pub invariant: &'static str,
    /// The offending block, when the violation is attributable to one.
    pub block: Option<BlockId>,
    /// Human-readable description with the observed/expected values.
    pub detail: String,
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.block {
            Some(id) => write!(f, "[{}] block {}: {}", self.invariant, id, self.detail),
            None => write!(f, "[{}] {}", self.invariant, self.detail),
        }
    }
}

impl std::error::Error for InvariantViolation {}

fn violation(
    invariant: &'static str,
    block: Option<BlockId>,
    detail: String,
) -> InvariantViolation {
    InvariantViolation {
        invariant,
        block,
        detail,
    }
}

/// Checks every structural invariant, returning all violations found (empty
/// means the tree is sound).  Runs in `O(n)` over the tree's public API.
pub fn check_block_tree(tree: &BlockTree) -> Vec<InvariantViolation> {
    let mut out = Vec::new();
    let mut recomputed_height = 0u64;
    let mut recomputed_max_fork = 0usize;
    let mut childless: HashSet<BlockId> = HashSet::new();

    for block in tree.blocks() {
        let id = block.id;
        if block.height > recomputed_height {
            recomputed_height = block.height;
        }
        let children = tree.children(id);
        recomputed_max_fork = recomputed_max_fork.max(children.len());
        if children.is_empty() {
            childless.insert(id);
        }
        for child in &children {
            match tree.get(*child) {
                None => out.push(violation(
                    "links",
                    Some(id),
                    format!("child {child} is not in the tree"),
                )),
                Some(c) if c.parent != Some(id) => out.push(violation(
                    "links",
                    Some(id),
                    format!("child {child} does not point back at this parent"),
                )),
                Some(_) => {}
            }
        }

        let Some(parent_id) = block.parent else {
            // Exactly one parentless block is allowed: the genesis.
            if id != tree.genesis().id {
                out.push(violation(
                    "links",
                    Some(id),
                    "non-genesis block has no parent pointer".to_string(),
                ));
            }
            continue;
        };
        let Some(parent) = tree.get(parent_id) else {
            out.push(violation(
                "links",
                Some(id),
                format!("parent {parent_id} is not in the tree"),
            ));
            continue;
        };
        if block.height != parent.height + 1 {
            out.push(violation(
                "links",
                Some(id),
                format!(
                    "height {} is not parent height {} + 1",
                    block.height, parent.height
                ),
            ));
        }
        if !tree.children(parent_id).contains(&id) {
            out.push(violation(
                "links",
                Some(id),
                format!("parent {parent_id} does not list this block as a child"),
            ));
        }

        match (tree.cumulative_work(id), tree.cumulative_work(parent_id)) {
            (Some(own), Some(parents)) => {
                if own <= parents {
                    out.push(violation(
                        "work-monotone",
                        Some(id),
                        format!("cumulative work {own} does not exceed parent's {parents}"),
                    ));
                } else if own != parents + block.work {
                    out.push(violation(
                        "work-monotone",
                        Some(id),
                        format!(
                            "cumulative work {own} != parent {parents} + own work {}",
                            block.work
                        ),
                    ));
                }
            }
            _ => out.push(violation(
                "work-monotone",
                Some(id),
                "cumulative work is untracked for a present block".to_string(),
            )),
        }
    }

    let maintained: HashSet<BlockId> = tree.leaves().into_iter().collect();
    for id in maintained.difference(&childless) {
        out.push(violation(
            "leaf-set",
            Some(*id),
            "listed as a leaf but has children".to_string(),
        ));
    }
    for id in childless.difference(&maintained) {
        out.push(violation(
            "leaf-set",
            Some(*id),
            "childless but missing from the maintained leaf set".to_string(),
        ));
    }

    if tree.height() != recomputed_height {
        out.push(violation(
            "aggregates",
            None,
            format!(
                "maintained height {} != recomputed {}",
                tree.height(),
                recomputed_height
            ),
        ));
    }
    if tree.max_fork_degree() != recomputed_max_fork {
        out.push(violation(
            "aggregates",
            None,
            format!(
                "maintained max fork degree {} != recomputed {}",
                tree.max_fork_degree(),
                recomputed_max_fork
            ),
        ));
    }

    check_reachability_labels(tree, &mut out);

    out
}

/// The reachability-labeling invariants: interval nesting (child strictly
/// inside the parent's usable range `[start, end-1)`), sibling disjointness,
/// and cursor bounds.  These are exactly the conditions under which interval
/// containment equals ancestry, so the O(1) `is_ancestor` fast path stays
/// trustworthy under fault injection.
fn check_reachability_labels(tree: &BlockTree, out: &mut Vec<InvariantViolation>) {
    for block in tree.blocks() {
        let idx = tree.idx_of(block.id).expect("enumerated blocks resolve");
        let iv = tree.interval_at(idx);
        if iv.start >= iv.end {
            out.push(violation(
                "reachability",
                Some(block.id),
                format!("empty labeling interval [{}, {})", iv.start, iv.end),
            ));
            continue;
        }
        let cursor = tree.interval_cursor_at(idx);
        if cursor < iv.start || cursor > iv.end - 1 {
            out.push(violation(
                "reachability",
                Some(block.id),
                format!(
                    "allocation cursor {cursor} outside usable range [{}, {})",
                    iv.start,
                    iv.end - 1
                ),
            ));
        }
        let mut child_ivs: Vec<_> = tree
            .children_idx(idx)
            .iter()
            .map(|&c| (tree.block_at(c).id, tree.interval_at(c)))
            .collect();
        child_ivs.sort_by_key(|(_, c)| c.start);
        for (k, (child_id, child_iv)) in child_ivs.iter().enumerate() {
            if child_iv.start < iv.start || child_iv.end > iv.end - 1 {
                out.push(violation(
                    "reachability",
                    Some(*child_id),
                    format!(
                        "interval [{}, {}) escapes the parent's usable range [{}, {})",
                        child_iv.start,
                        child_iv.end,
                        iv.start,
                        iv.end - 1
                    ),
                ));
            }
            if k > 0 && child_ivs[k - 1].1.end > child_iv.start {
                out.push(violation(
                    "reachability",
                    Some(*child_id),
                    format!(
                        "interval [{}, {}) overlaps sibling {} ending at {}",
                        child_iv.start,
                        child_iv.end,
                        child_ivs[k - 1].0,
                        child_ivs[k - 1].1.end
                    ),
                ));
            }
        }
    }
}

/// Checks that a durable block set agrees with a (possibly pruned)
/// resident tree — the store↔tree contract of a checkpointed replica:
///
/// 1. **No duplicates** — the durable set stores each block id once.
/// 2. **Tree ⊆ store** — every resident block except the implicit genesis
///    is durable, and the durable copy is field-for-field identical.  The
///    tree's root is exempted from the parent-pointer comparison: a pruned
///    window's root is a boundary copy whose parent link was deliberately
///    cleared by rerooting, while the durable copy keeps the true pointer.
/// 3. **Store ⊆ tree above the floor** — every durable block strictly above
///    the tree root's height (the pruning floor) is resident; below the
///    floor the store legitimately holds cold history the tree dropped.
///
/// `stored` is the decoded durable set (e.g. `BlockStore::blocks()` from
/// `btadt-store`); taking plain blocks keeps this crate free of a store
/// dependency, so the check runs against any durable backend.
pub fn check_store_tree_agreement(tree: &BlockTree, stored: &[Block]) -> Vec<InvariantViolation> {
    let mut out = Vec::new();
    let floor = tree.genesis().height;
    let root_id = tree.genesis().id;
    let mut by_id: HashMap<BlockId, &Block> = HashMap::with_capacity(stored.len());
    for block in stored {
        if by_id.insert(block.id, block).is_some() {
            out.push(violation(
                "store-agree",
                Some(block.id),
                "stored more than once".to_string(),
            ));
        }
    }

    for block in tree.blocks() {
        if block.id == GENESIS_ID {
            // The genesis block is implicit everywhere and never persisted.
            continue;
        }
        match by_id.get(&block.id) {
            None => out.push(violation(
                "store-agree",
                Some(block.id),
                "resident in the tree but not durable".to_string(),
            )),
            Some(durable) => {
                let agrees = if block.id == root_id {
                    let mut normalized = (*durable).clone();
                    normalized.parent = block.parent;
                    normalized == *block
                } else {
                    **durable == *block
                };
                if !agrees {
                    out.push(violation(
                        "store-agree",
                        Some(block.id),
                        format!(
                            "durable copy (height {}, work {}) disagrees with the \
                             resident block (height {}, work {})",
                            durable.height, durable.work, block.height, block.work
                        ),
                    ));
                }
            }
        }
    }

    for block in stored {
        if block.height > floor && !tree.contains(block.id) {
            out.push(violation(
                "store-agree",
                Some(block.id),
                format!(
                    "durable at height {} above the pruning floor {floor} but not resident",
                    block.height
                ),
            ));
        }
    }

    out
}

/// [`check_block_tree`] as a `Result`, surfacing the first violation.
pub fn assert_block_tree(tree: &BlockTree) -> Result<(), InvariantViolation> {
    match check_block_tree(tree).into_iter().next() {
        None => Ok(()),
        Some(v) => Err(v),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btadt_types::workload::Workload;
    use btadt_types::{Block, BlockBuilder};

    #[test]
    fn a_fresh_tree_is_sound() {
        assert!(check_block_tree(&BlockTree::new()).is_empty());
        assert_eq!(assert_block_tree(&BlockTree::new()), Ok(()));
    }

    #[test]
    fn random_trees_are_sound() {
        for seed in [1u64, 7, 23] {
            let tree = Workload::new(seed).random_tree(200, 0.6, 0);
            let violations = check_block_tree(&tree);
            assert!(violations.is_empty(), "seed {seed}: {violations:?}");
        }
    }

    #[test]
    fn reindexed_trees_keep_the_labeling_invariants() {
        // A wide star forces interval exhaustion and reindex passes; the
        // labeling family must stay clean through every pass.
        let tree = Workload::new(13).forked_tree(0, 200, 1);
        assert!(tree.reachability_reindexes() > 0, "star must reindex");
        let violations = check_block_tree(&tree);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn a_forged_height_is_reported() {
        let mut tree = BlockTree::new();
        let a = BlockBuilder::new(tree.genesis()).nonce(1).build();
        tree.insert(a.clone()).unwrap();
        // Forge a block whose height skips a level but whose parent is the
        // genesis; the arena accepts only consistent heights, so build the
        // inconsistency by hand via a forged parent pointer instead.
        let mut b = BlockBuilder::new(&a).nonce(2).build();
        b.parent = Some(tree.genesis().id);
        // `insert` itself rejects the mismatch — that rejection is the
        // first line of defence the checker backstops.
        assert!(tree.insert(b).is_err());
        assert!(check_block_tree(&tree).is_empty());
    }

    #[test]
    fn store_tree_agreement_accepts_a_faithful_mirror() {
        let tree = Workload::new(11).random_tree(60, 0.5, 0);
        let stored: Vec<Block> = tree.blocks().filter(|b| !b.is_genesis()).cloned().collect();
        assert!(check_store_tree_agreement(&tree, &stored).is_empty());
    }

    #[test]
    fn store_tree_agreement_reports_gaps_duplicates_and_strays() {
        let mut tree = BlockTree::new();
        let a = BlockBuilder::new(tree.genesis()).nonce(1).build();
        let b = BlockBuilder::new(&a).nonce(2).build();
        tree.insert(a.clone()).unwrap();
        tree.insert(b.clone()).unwrap();
        // Gap: `b` resident but not durable.
        let gaps = check_store_tree_agreement(&tree, std::slice::from_ref(&a));
        assert_eq!(gaps.len(), 1);
        assert_eq!(gaps[0].block, Some(b.id));
        assert!(gaps[0].detail.contains("not durable"));
        // Duplicate durable copy.
        let dups = check_store_tree_agreement(&tree, &[a.clone(), a.clone(), b.clone()]);
        assert!(dups.iter().any(|v| v.detail.contains("more than once")));
        // A stray durable block above the floor that the tree never saw.
        let stray = BlockBuilder::new(&a).nonce(99).build();
        let strays = check_store_tree_agreement(&tree, &[a.clone(), b.clone(), stray.clone()]);
        assert_eq!(strays.len(), 1);
        assert_eq!(strays[0].block, Some(stray.id));
        assert!(strays[0].detail.contains("not resident"));
        // A forged durable copy under the resident block's id.
        let mut forged = b.clone();
        forged.work += 1;
        let forgeries = check_store_tree_agreement(&tree, &[a, forged]);
        assert!(forgeries.iter().any(|v| v.detail.contains("disagrees")));
    }

    #[test]
    fn store_tree_agreement_exempts_the_pruned_boundary_and_cold_history() {
        let mut full = BlockTree::new();
        let a = BlockBuilder::new(full.genesis()).nonce(1).build();
        let b = BlockBuilder::new(&a).nonce(2).build();
        let c = BlockBuilder::new(&b).nonce(3).build();
        for blk in [&a, &b, &c] {
            full.insert(blk.clone()).unwrap();
        }
        // A hot window rooted at `b`: the resident root is a boundary copy
        // with its parent pointer cleared, the store keeps the true block.
        let mut window = BlockTree::rerooted(b.clone());
        window.insert(c.clone()).unwrap();
        let stored = vec![a, b, c];
        let violations = check_store_tree_agreement(&window, &stored);
        assert!(
            violations.is_empty(),
            "boundary copy and cold spine are legitimate: {violations:?}"
        );
    }

    #[test]
    fn violations_render_with_invariant_labels() {
        let v = InvariantViolation {
            invariant: "leaf-set",
            block: Some(Block::genesis().id),
            detail: "demo".to_string(),
        };
        assert!(v.to_string().contains("[leaf-set]"));
        let anon = InvariantViolation {
            invariant: "aggregates",
            block: None,
            detail: "demo".to_string(),
        };
        assert!(anon.to_string().starts_with("[aggregates]"));
    }
}
