//! # `btadt-core` — the BlockTree ADT, its consistency criteria and the
//! oracle refinements
//!
//! This crate is the paper's primary contribution turned into a library:
//!
//! * [`ops`] — the BT-ADT operation alphabet (`append(b)`, `read()`) and the
//!   concurrent-history type specialised to it.
//! * [`blocktree_adt`] — the sequential specification of the BlockTree
//!   (Definition 3.1, Figure 1) as a transducer implementing
//!   `btadt_history::AbstractDataType`.
//! * [`criteria`] — the four BT properties (Block Validity, Local Monotonic
//!   Read, Strong Prefix, Ever-Growing Tree) plus Eventual Prefix, and the
//!   two consistency criteria built from them: **BT Strong Consistency**
//!   (Definition 3.2) and **BT Eventual Consistency** (Definition 3.4).
//! * [`refinement`] — `R(BT-ADT, Θ)` (Definition 3.7, Figure 7): the append
//!   operation refined into `getToken* ; consumeToken`, executed atomically
//!   against a token oracle, with oracle-log capture for k-Fork-Coherence
//!   checking.
//! * [`replica`] — a replicated BlockTree process that issues the
//!   `send` / `receive` / `update` events of Section 4.2; used by the
//!   protocol models and by the Update-Agreement experiments.
//! * [`update_agreement`] — the Update Agreement properties R1–R3
//!   (Definition 4.3, Figure 13) and the Light Reliable Communication
//!   abstraction (Definition 4.4), as executable checks over
//!   message-passing histories.
//! * [`reachability`] — the [`ReachForest`]: all read chains of a history
//!   interned into one interval-indexed [`btadt_types::BlockTree`], turning
//!   the checkers' pairwise prefix tests into O(1) containment checks and
//!   `mcp` into an interval-guided binary ascent.
//! * [`invariant`] — recompute-and-compare structural checking of
//!   [`btadt_types::BlockTree`] instances (link consistency, leaf-set
//!   agreement, cumulative-work monotonicity) for fault-injection monitors.
//! * [`hierarchy`] — executable versions of the hierarchy results
//!   (Theorems 3.1, 3.3, 3.4, Corollary 3.4.1, Theorem 4.8 / Figure 14):
//!   history-family generation and inclusion experiments.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod blocktree_adt;
pub mod criteria;
pub mod hierarchy;
pub mod invariant;
pub mod ops;
pub mod reachability;
pub mod refinement;
pub mod replica;
pub mod update_agreement;

pub use blocktree_adt::{BlockTreeAdt, BtState};
pub use criteria::{
    eventual_consistency, eventual_consistency_reference, strong_consistency,
    strong_consistency_reference, BlockValidity, EventualPrefix, EverGrowingTree,
    LocalMonotonicRead, StrongPrefix,
};
pub use invariant::{
    assert_block_tree, check_block_tree, check_store_tree_agreement, InvariantViolation,
};
pub use ops::{BtHistory, BtOperation, BtRecorder, BtResponse};
pub use reachability::ReachForest;
pub use refinement::{RefinedBlockTree, RefinementOutcome};
pub use replica::{BtReplica, ReplicatedRun};
pub use update_agreement::{
    LightReliableCommunication, MessageHistory, ReplicaEvent, ReplicaEventKind, UpdateAgreement,
};
