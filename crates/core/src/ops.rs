//! The BT-ADT operation alphabet and its history types.
//!
//! The input alphabet of the BlockTree ADT is
//! `A = {append(b), read() : b ∈ B}` and the output alphabet is
//! `B = BC ∪ {true, false}` (Definition 3.1).  Concurrent histories over
//! these operations are the objects the consistency criteria judge.

use btadt_history::{ConcurrentHistory, HistoryRecorder, OperationRecord};
use btadt_types::{Block, Blockchain};

/// An input symbol of the BT-ADT.
#[derive(Clone, Debug, PartialEq)]
pub enum BtOperation {
    /// `append(b)`: request to append block `b`.
    Append(Block),
    /// `read()`: request the currently selected blockchain.
    Read,
}

impl BtOperation {
    /// Returns the block carried by an `append`, if any.
    pub fn block(&self) -> Option<&Block> {
        match self {
            BtOperation::Append(b) => Some(b),
            BtOperation::Read => None,
        }
    }

    /// Returns `true` iff this is a `read()`.
    pub fn is_read(&self) -> bool {
        matches!(self, BtOperation::Read)
    }

    /// Returns `true` iff this is an `append(b)`.
    pub fn is_append(&self) -> bool {
        matches!(self, BtOperation::Append(_))
    }
}

/// An output symbol of the BT-ADT.
#[derive(Clone, Debug, PartialEq)]
pub enum BtResponse {
    /// Outcome of an `append(b)` (`true` iff the block was appended).
    Appended(bool),
    /// The blockchain returned by a `read()`.
    Chain(Blockchain),
}

impl BtResponse {
    /// Returns the chain carried by a `read()` response, if any.
    pub fn chain(&self) -> Option<&Blockchain> {
        match self {
            BtResponse::Chain(c) => Some(c),
            BtResponse::Appended(_) => None,
        }
    }

    /// Returns the boolean outcome of an `append`, if any.
    pub fn appended(&self) -> Option<bool> {
        match self {
            BtResponse::Appended(b) => Some(*b),
            BtResponse::Chain(_) => None,
        }
    }
}

/// A concurrent history over BT-ADT operations.
pub type BtHistory = ConcurrentHistory<BtOperation, BtResponse>;

/// A recorder building a [`BtHistory`].
pub type BtRecorder = HistoryRecorder<BtOperation, BtResponse>;

/// One operation record of a [`BtHistory`].
pub type BtRecord = OperationRecord<BtOperation, BtResponse>;

/// Convenience helpers over BT histories used by every criterion.
pub trait BtHistoryExt {
    /// All complete `read()` operations together with the chain they
    /// returned, sorted by response time.
    fn reads(&self) -> Vec<(&BtRecord, &Blockchain)>;

    /// All complete `append(b)` operations together with their block and
    /// boolean outcome.
    fn appends(&self) -> Vec<(&BtRecord, &Block, bool)>;

    /// The history purged of unsuccessful append responses, as Section 3.4
    /// does before comparing history families.
    fn purged_of_failed_appends(&self) -> BtHistory;
}

impl BtHistoryExt for BtHistory {
    fn reads(&self) -> Vec<(&BtRecord, &Blockchain)> {
        self.by_response_time()
            .into_iter()
            .filter_map(|r| match (&r.op, r.response.as_ref()) {
                (BtOperation::Read, Some(BtResponse::Chain(c))) => Some((r, c)),
                _ => None,
            })
            .collect()
    }

    fn appends(&self) -> Vec<(&BtRecord, &Block, bool)> {
        self.by_response_time()
            .into_iter()
            .filter_map(|r| match (&r.op, r.response.as_ref()) {
                (BtOperation::Append(b), Some(BtResponse::Appended(ok))) => Some((r, b, *ok)),
                _ => None,
            })
            .collect()
    }

    fn purged_of_failed_appends(&self) -> BtHistory {
        self.filtered(|r| {
            !matches!(
                (&r.op, r.response.as_ref()),
                (BtOperation::Append(_), Some(BtResponse::Appended(false)))
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btadt_history::ProcessId;
    use btadt_types::{Block, BlockBuilder};

    fn block(nonce: u64) -> Block {
        BlockBuilder::new(&Block::genesis()).nonce(nonce).build()
    }

    #[test]
    fn operation_accessors() {
        let b = block(1);
        let append = BtOperation::Append(b.clone());
        assert!(append.is_append());
        assert!(!append.is_read());
        assert_eq!(append.block(), Some(&b));
        assert!(BtOperation::Read.is_read());
        assert_eq!(BtOperation::Read.block(), None);
    }

    #[test]
    fn response_accessors() {
        let chain = Blockchain::genesis_only();
        assert_eq!(BtResponse::Chain(chain.clone()).chain(), Some(&chain));
        assert_eq!(BtResponse::Chain(chain).appended(), None);
        assert_eq!(BtResponse::Appended(true).appended(), Some(true));
        assert_eq!(BtResponse::Appended(true).chain(), None);
    }

    #[test]
    fn history_ext_extracts_reads_and_appends() {
        let mut rec = BtRecorder::new();
        let p = ProcessId(0);
        rec.instantaneous(p, BtOperation::Append(block(1)), BtResponse::Appended(true));
        rec.instantaneous(
            p,
            BtOperation::Read,
            BtResponse::Chain(Blockchain::genesis_only()),
        );
        rec.instantaneous(
            p,
            BtOperation::Append(block(2)),
            BtResponse::Appended(false),
        );
        let h = rec.into_history();

        assert_eq!(h.reads().len(), 1);
        assert_eq!(h.appends().len(), 2);
        let purged = h.purged_of_failed_appends();
        assert_eq!(purged.len(), 2);
        assert_eq!(purged.appends().len(), 1);
        assert!(purged.appends()[0].2);
    }

    #[test]
    fn reads_are_sorted_by_response_time() {
        let mut rec = BtRecorder::new();
        rec.instantaneous(
            ProcessId(1),
            BtOperation::Read,
            BtResponse::Chain(Blockchain::genesis_only()),
        );
        rec.instantaneous(
            ProcessId(0),
            BtOperation::Read,
            BtResponse::Chain(Blockchain::genesis_only()),
        );
        let h = rec.into_history();
        let reads = h.reads();
        assert_eq!(reads.len(), 2);
        assert!(reads[0].0.responded_at < reads[1].0.responded_at);
    }
}
