//! # `btadt-protocols` — protocol models of the systems classified in
//! Table 1
//!
//! Section 5 of the paper classifies seven existing systems by (a) who may
//! append, (b) how `getToken` / `consumeToken` are realised (prodigal vs
//! frugal k=1 oracle) and (c) which selection function they use:
//!
//! | System | Refinement |
//! |---|---|
//! | Bitcoin | R(BT-ADT_EC, Θ_P), heaviest/longest chain |
//! | Ethereum | R(BT-ADT_EC, Θ_P), GHOST |
//! | Algorand | R(BT-ADT_SC, Θ_F,k=1), sortition committee |
//! | ByzCoin | R(BT-ADT_SC, Θ_F,k=1), PoW-elected committee |
//! | PeerCensus | R(BT-ADT_SC, Θ_F,k=1), committee |
//! | Red Belly | R(BT-ADT_SC, Θ_F,k=1), consortium |
//! | Hyperledger Fabric | R(BT-ADT_SC, Θ_F,k=1), ordering service |
//!
//! This crate implements executable models of the two protocol *families*
//! the table reduces to — proof-of-work flooding with a fork-prone
//! (prodigal) oracle, and committee/quorum commit with a fork-free (frugal
//! k=1) oracle — parameterised by selection function, merit distribution and
//! leader rule so each named system maps onto a configuration.  The models
//! run on the deterministic simulator of `btadt-netsim`, their executions
//! are converted into BT histories and message histories, and the
//! consistency checkers of `btadt-core` classify them — regenerating
//! Table 1 empirically (`classification::table1`).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adversary;
pub mod classification;
pub mod committee;
pub mod extract;
pub mod gossip;
pub mod journal;
pub mod messages;
pub mod pow;

pub use adversary::{build_miners, scenario_pow_config, AdversarialMiner, Miner, Strategy};
pub use classification::{classify, table1, Classification, ProtocolSpec, SystemModel, TableRow};
pub use committee::{CommitteeConfig, CommitteeReplica, LeaderRule};
pub use extract::{build_histories, ReplicaLog};
pub use gossip::{GossipSync, ResponseClass, SyncStats, MAX_SYNC_BATCH};
pub use journal::{Journal, JournalEntry, JournalKind, RecoveryMode};
pub use messages::Msg;
pub use pow::{PowConfig, PowReplica};
