//! Protocol messages.
//!
//! Both protocol families flood blocks; the committee family additionally
//! exchanges proposals and votes for its quorum commit.  Replicas that
//! detect a gap (an orphan block) repair it with the delta-sync pair
//! [`Msg::SyncRequest`] / [`Msg::Blocks`]: instead of gossiping whole
//! trees, a peer answers with exactly the blocks above the requester's
//! height, parents-first, extracted from its arena
//! ([`BlockTree::delta_above`](btadt_types::BlockTree::delta_above)).

use btadt_types::{Block, BlockId};

/// A message exchanged between replicas.
#[derive(Clone, Debug, PartialEq)]
pub enum Msg {
    /// A freshly produced (PoW) or committed (committee) block is flooded.
    NewBlock(Block),
    /// The round leader proposes a block to the committee.
    Propose {
        /// Consensus round.
        round: u64,
        /// Proposed block.
        block: Block,
    },
    /// A committee member votes for a proposal.
    Vote {
        /// Consensus round.
        round: u64,
        /// Identifier of the voted block.
        block: BlockId,
        /// The full block, piggybacked so late voters can commit directly.
        payload: Block,
    },
    /// Delta-sync request: "send me every block above this height".  Sent
    /// to the peer whose block arrived as an orphan.
    SyncRequest {
        /// Correlates the response with the request (and with the
        /// requester's incarnation — see
        /// [`GossipSync`](crate::gossip::GossipSync)-level docs).  `0` marks
        /// an unsolicited batch.
        request_id: u64,
        /// Height of the requester's tree.
        above_height: u64,
    },
    /// Delta-sync response: a batch of blocks sorted `(height, id)` so the
    /// receiver can insert them parents-first.  Responders always reply,
    /// even with an empty batch, so the requester can clear its pending
    /// request and score the peer as alive.
    Blocks {
        /// Echo of the triggering request's id (`0` for unsolicited blocks).
        request_id: u64,
        /// The delta batch, capped at
        /// [`MAX_SYNC_BATCH`](crate::gossip::MAX_SYNC_BATCH) blocks.
        blocks: Vec<Block>,
    },
}

impl Msg {
    /// The primary block carried by the message (the first of a delta
    /// batch), if any.
    pub fn block(&self) -> Option<&Block> {
        match self {
            Msg::NewBlock(b) => Some(b),
            Msg::Propose { block, .. } => Some(block),
            Msg::Vote { payload, .. } => Some(payload),
            Msg::SyncRequest { .. } => None,
            Msg::Blocks { blocks, .. } => blocks.first(),
        }
    }

    /// A short label for trace debugging.
    pub fn label(&self) -> &'static str {
        match self {
            Msg::NewBlock(_) => "new-block",
            Msg::Propose { .. } => "propose",
            Msg::Vote { .. } => "vote",
            Msg::SyncRequest { .. } => "sync-request",
            Msg::Blocks { .. } => "blocks",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btadt_types::BlockBuilder;

    #[test]
    fn accessors() {
        let b = BlockBuilder::new(&Block::genesis()).nonce(1).build();
        let m = Msg::NewBlock(b.clone());
        assert_eq!(m.block().unwrap().id, b.id);
        assert_eq!(m.label(), "new-block");
        let p = Msg::Propose {
            round: 3,
            block: b.clone(),
        };
        assert_eq!(p.label(), "propose");
        assert_eq!(p.block().unwrap().id, b.id);
        let v = Msg::Vote {
            round: 3,
            block: b.id,
            payload: b.clone(),
        };
        assert_eq!(v.label(), "vote");
        assert_eq!(v.block().unwrap().id, b.id);
        let s = Msg::SyncRequest {
            request_id: 9,
            above_height: 4,
        };
        assert_eq!(s.label(), "sync-request");
        assert!(s.block().is_none());
        let d = Msg::Blocks {
            request_id: 9,
            blocks: vec![b.clone()],
        };
        assert_eq!(d.label(), "blocks");
        assert_eq!(d.block().unwrap().id, b.id);
        let empty = Msg::Blocks {
            request_id: 0,
            blocks: vec![],
        };
        assert!(empty.block().is_none());
    }
}
