//! Protocol messages.
//!
//! Both protocol families flood blocks; the committee family additionally
//! exchanges proposals and votes for its quorum commit.

use btadt_types::{Block, BlockId};

/// A message exchanged between replicas.
#[derive(Clone, Debug, PartialEq)]
pub enum Msg {
    /// A freshly produced (PoW) or committed (committee) block is flooded.
    NewBlock(Block),
    /// The round leader proposes a block to the committee.
    Propose {
        /// Consensus round.
        round: u64,
        /// Proposed block.
        block: Block,
    },
    /// A committee member votes for a proposal.
    Vote {
        /// Consensus round.
        round: u64,
        /// Identifier of the voted block.
        block: BlockId,
        /// The full block, piggybacked so late voters can commit directly.
        payload: Block,
    },
}

impl Msg {
    /// The block carried by the message.
    pub fn block(&self) -> &Block {
        match self {
            Msg::NewBlock(b) => b,
            Msg::Propose { block, .. } => block,
            Msg::Vote { payload, .. } => payload,
        }
    }

    /// A short label for trace debugging.
    pub fn label(&self) -> &'static str {
        match self {
            Msg::NewBlock(_) => "new-block",
            Msg::Propose { .. } => "propose",
            Msg::Vote { .. } => "vote",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btadt_types::BlockBuilder;

    #[test]
    fn accessors() {
        let b = BlockBuilder::new(&Block::genesis()).nonce(1).build();
        let m = Msg::NewBlock(b.clone());
        assert_eq!(m.block().id, b.id);
        assert_eq!(m.label(), "new-block");
        let p = Msg::Propose { round: 3, block: b.clone() };
        assert_eq!(p.label(), "propose");
        assert_eq!(p.block().id, b.id);
        let v = Msg::Vote { round: 3, block: b.id, payload: b.clone() };
        assert_eq!(v.label(), "vote");
        assert_eq!(v.block().id, b.id);
    }
}
