//! The committee / quorum-commit family (Algorand, ByzCoin, PeerCensus,
//! Red Belly, Hyperledger Fabric — Sections 5.3–5.7).
//!
//! These systems realise the frugal oracle with `k = 1`: per height (round)
//! a single block is committed, through some Byzantine-tolerant agreement
//! among a committee.  The model proceeds in rounds:
//!
//! 1. the round's **leader** (chosen by a [`LeaderRule`]: round-robin over
//!    the committee for consortium systems, stake-weighted sortition for
//!    Algorand) proposes a block extending its selected chain;
//! 2. committee members **vote** for the first valid proposal of the round;
//! 3. any replica that observes a **quorum** (> 2/3 of the committee) of
//!    votes commits the block, applies it and moves to the next round.
//!
//! A round timeout advances the round when a leader is silent (crashed or
//! Byzantine-omitting), so the chain keeps growing with up to `f < m/3`
//! faulty committee members.  Forks never occur: at most one block gathers a
//! quorum per round — this is the `consumeToken`-with-`k = 1` behaviour.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use btadt_netsim::{Context, Process, SimTime};
use btadt_types::{
    Block, BlockBuilder, BlockId, BlockTree, Blockchain, LongestChain, SelectionFunction,
    Transaction,
};

use crate::extract::ReplicaLog;
use crate::messages::Msg;

/// Round timers are encoded as `ROUND_TIMER_BASE + round` so that a timeout
/// armed for an old round is ignored once the round has advanced.
const ROUND_TIMER_BASE: u64 = 1 << 32;

/// How the round leader is selected.
#[derive(Clone, Debug)]
pub enum LeaderRule {
    /// Round-robin over the committee (Hyperledger ordering service,
    /// Red Belly, PeerCensus, ByzCoin key-block committee).
    RoundRobin,
    /// Stake-weighted pseudo-random sortition (Algorand): the leader of
    /// round `r` is drawn from the committee with probability proportional
    /// to its weight, deterministically from `(seed, r)` so that every
    /// replica computes the same leader.
    Sortition {
        /// Per-committee-member weights (stake).
        weights: Vec<f64>,
        /// Common sortition seed.
        seed: u64,
    },
}

impl LeaderRule {
    /// The leader of the given round, as an index into the committee.
    pub fn leader(&self, round: u64, committee_size: usize) -> usize {
        assert!(committee_size > 0);
        match self {
            LeaderRule::RoundRobin => (round as usize) % committee_size,
            LeaderRule::Sortition { weights, seed } => {
                let total: f64 = weights.iter().take(committee_size).sum();
                // Deterministic pseudo-random draw from (seed, round).
                let mut h = seed ^ round.wrapping_mul(0x9e37_79b9_7f4a_7c15);
                h ^= h >> 33;
                h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
                h ^= h >> 33;
                let draw = (h as f64 / u64::MAX as f64) * total;
                let mut acc = 0.0;
                for (i, w) in weights.iter().take(committee_size).enumerate() {
                    acc += w;
                    if draw <= acc {
                        return i;
                    }
                }
                committee_size - 1
            }
        }
    }
}

/// Configuration of a committee replica.
#[derive(Clone)]
pub struct CommitteeConfig {
    /// The committee members (process indices allowed to propose and vote).
    pub committee: Vec<usize>,
    /// Leader selection rule.
    pub leader_rule: LeaderRule,
    /// Number of rounds to run (one block per committed round).
    pub rounds: u64,
    /// Round timeout: if no commit happens within this many ticks the round
    /// is skipped.
    pub round_timeout: u64,
    /// Selection function (committee systems have a single chain, so the
    /// longest-chain rule is the trivial projection).
    pub selection: Arc<dyn SelectionFunction>,
}

impl CommitteeConfig {
    /// A sensible default configuration over the given committee.
    pub fn new(committee: Vec<usize>, rounds: u64) -> Self {
        CommitteeConfig {
            committee,
            leader_rule: LeaderRule::RoundRobin,
            rounds,
            round_timeout: 20,
            selection: Arc::new(LongestChain::new()),
        }
    }

    /// The quorum size: strictly more than two thirds of the committee.
    pub fn quorum(&self) -> usize {
        (2 * self.committee.len()) / 3 + 1
    }
}

/// A committee replica.
pub struct CommitteeReplica {
    id: usize,
    config: CommitteeConfig,
    tree: BlockTree,
    round: u64,
    committed_rounds: HashSet<u64>,
    votes: HashMap<(u64, BlockId), HashSet<usize>>,
    proposals: HashMap<(u64, BlockId), Block>,
    voted_rounds: HashSet<u64>,
    /// Rounds whose quorum was observed before their parent block arrived;
    /// committed as soon as the chain catches up.
    pending_commits: HashMap<u64, BlockId>,
    seen_blocks: HashSet<BlockId>,
    next_tx: u64,
    /// Everything this replica did (read by the classification driver).
    pub log: ReplicaLog,
}

impl CommitteeReplica {
    /// Creates a replica.
    pub fn new(id: usize, config: CommitteeConfig) -> Self {
        CommitteeReplica {
            id,
            config,
            tree: BlockTree::new(),
            round: 0,
            committed_rounds: HashSet::new(),
            votes: HashMap::new(),
            proposals: HashMap::new(),
            voted_rounds: HashSet::new(),
            pending_commits: HashMap::new(),
            seen_blocks: HashSet::new(),
            next_tx: 1,
            log: ReplicaLog::new(),
        }
    }

    /// The replica's current local BlockTree.
    pub fn tree(&self) -> &BlockTree {
        &self.tree
    }

    /// The chain currently selected by the replica.
    pub fn selected(&self) -> Blockchain {
        self.config.selection.select(&self.tree)
    }

    /// The replica's current round.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Forces a read (used for the final quiescent read).
    pub fn force_read(&mut self, at: SimTime) {
        let chain = self.selected();
        self.log.record_read(at, chain);
    }

    fn is_member(&self, p: usize) -> bool {
        self.config.committee.contains(&p)
    }

    fn leader_of(&self, round: u64) -> usize {
        let idx = self
            .config
            .leader_rule
            .leader(round, self.config.committee.len());
        self.config.committee[idx]
    }

    fn propose_if_leader(&mut self, ctx: &mut Context<Msg>) {
        if self.round >= self.config.rounds {
            return;
        }
        if self.leader_of(self.round) != self.id || !self.is_member(self.id) {
            return;
        }
        let parent = self.selected().tip().clone();
        let tx = Transaction::transfer(
            (self.id as u64) << 40 | self.next_tx,
            self.id as u32,
            ((self.id + 1) % ctx.n().max(1)) as u32,
            1,
        );
        self.next_tx += 1;
        let block = BlockBuilder::new(&parent)
            .producer(self.id as u32)
            .nonce(self.round)
            .push_tx(tx)
            .build();
        let at = ctx.now();
        self.log.record_created(at, block.clone());
        self.proposals.insert((self.round, block.id), block.clone());
        ctx.broadcast(Msg::Propose {
            round: self.round,
            block: block.clone(),
        });
        // The leader votes for its own proposal.
        self.cast_vote(ctx, self.round, block);
    }

    fn cast_vote(&mut self, ctx: &mut Context<Msg>, round: u64, block: Block) {
        if !self.is_member(self.id) || self.voted_rounds.contains(&round) {
            return;
        }
        self.voted_rounds.insert(round);
        self.register_vote(ctx, round, self.id, block.clone());
        ctx.broadcast(Msg::Vote {
            round,
            block: block.id,
            payload: block,
        });
    }

    fn register_vote(&mut self, ctx: &mut Context<Msg>, round: u64, voter: usize, block: Block) {
        if !self.is_member(voter) {
            return; // only committee votes count
        }
        self.proposals
            .entry((round, block.id))
            .or_insert_with(|| block.clone());
        let voters = self.votes.entry((round, block.id)).or_default();
        voters.insert(voter);
        if voters.len() >= self.config.quorum() {
            self.commit(ctx, round, block.id);
        }
    }

    fn commit(&mut self, ctx: &mut Context<Msg>, round: u64, block_id: BlockId) {
        if self.committed_rounds.contains(&round) {
            return;
        }
        let Some(block) = self.proposals.get(&(round, block_id)).cloned() else {
            return;
        };
        // Commits must respect the chain order: a quorum observed for round
        // `r` before `r`'s parent block has been applied is deferred until
        // the chain catches up (otherwise a stale local tip would fork the
        // chain, breaking the frugal-k=1 semantics the family models).
        let parent_known = block.parent.map(|p| self.tree.contains(p)).unwrap_or(false);
        if !parent_known {
            self.pending_commits.insert(round, block_id);
            return;
        }
        self.committed_rounds.insert(round);
        self.pending_commits.remove(&round);
        let at = ctx.now();
        if self.tree.insert(block.clone()).is_ok() {
            self.log.record_applied(at, block.clone());
            self.log.record_read(at, self.selected());
        }
        if self.round <= round {
            self.round = round + 1;
            ctx.set_timer(self.config.round_timeout, ROUND_TIMER_BASE + self.round);
            self.propose_if_leader(ctx);
        }
        // The newly applied block may unblock deferred commits.
        let retry: Vec<(u64, BlockId)> =
            self.pending_commits.iter().map(|(r, b)| (*r, *b)).collect();
        for (r, b) in retry {
            self.commit(ctx, r, b);
        }
    }
}

impl Process<Msg> for CommitteeReplica {
    fn on_start(&mut self, ctx: &mut Context<Msg>) {
        ctx.set_timer(self.config.round_timeout, ROUND_TIMER_BASE + self.round);
        self.propose_if_leader(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<Msg>, from: usize, msg: Msg) {
        let at = ctx.now();
        match msg {
            Msg::Propose { round, block } => {
                if self.seen_blocks.insert(block.id) {
                    self.log.record_received(at, block.clone());
                }
                // Vote only for the legitimate leader's proposal of the
                // current (or future) round, and only if it extends a block
                // we know.
                if round >= self.round
                    && from == self.leader_of(round)
                    && block.parent.map(|p| self.tree.contains(p)).unwrap_or(false)
                {
                    self.proposals.insert((round, block.id), block.clone());
                    self.cast_vote(ctx, round, block);
                } else {
                    self.proposals.entry((round, block.id)).or_insert(block);
                }
            }
            Msg::Vote {
                round,
                block: _,
                payload,
            } => {
                if self.seen_blocks.insert(payload.id) {
                    self.log.record_received(at, payload.clone());
                }
                self.register_vote(ctx, round, from, payload);
            }
            Msg::NewBlock(block) => {
                // Committed blocks flooded to observers outside the committee.
                if self.seen_blocks.insert(block.id) {
                    self.log.record_received(at, block.clone());
                }
                if self.tree.insert(block.clone()).is_ok() {
                    self.log.record_applied(at, block);
                    self.log.record_read(at, self.selected());
                }
            }
            Msg::Blocks { blocks, .. } => {
                // Delta-sync response: committed blocks, parents-first.
                // Committee replicas never *send* SyncRequest today, so this
                // arm only fires in mixed fleets; it applies each block with
                // the same semantics as the NewBlock flood above (insert
                // failures ignored — committee blocks commit in order).
                for block in blocks {
                    if self.seen_blocks.insert(block.id) {
                        self.log.record_received(at, block.clone());
                    }
                    if self.tree.insert(block.clone()).is_ok() {
                        self.log.record_applied(at, block);
                        self.log.record_read(at, self.selected());
                    }
                }
            }
            Msg::SyncRequest {
                request_id,
                above_height,
            } => {
                // Always reply (even with an empty, possibly truncated
                // batch) so the requester's pending-request machinery can
                // settle; the echoed id correlates the response.
                let mut delta = self.tree.delta_above(above_height);
                crate::gossip::truncate_batch(&mut delta);
                ctx.send(
                    from,
                    Msg::Blocks {
                        request_id,
                        blocks: delta,
                    },
                );
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<Msg>, timer_id: u64) {
        if timer_id < ROUND_TIMER_BASE {
            return;
        }
        let timed_out_round = timer_id - ROUND_TIMER_BASE;
        if self.round >= self.config.rounds {
            return;
        }
        // Round timeout: only a timeout armed for the *current* round skips
        // it (timeouts for already-advanced rounds are stale and ignored).
        if self.round == timed_out_round && !self.committed_rounds.contains(&self.round) {
            self.round += 1;
            self.propose_if_leader(ctx);
        }
        ctx.set_timer(self.config.round_timeout, ROUND_TIMER_BASE + self.round);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btadt_netsim::{FailurePlan, SimConfig, Simulator};

    fn run(
        n: usize,
        committee: Vec<usize>,
        rounds: u64,
        seed: u64,
        failures: FailurePlan,
    ) -> Vec<CommitteeReplica> {
        let config = CommitteeConfig::new(committee, rounds);
        let replicas: Vec<CommitteeReplica> = (0..n)
            .map(|i| CommitteeReplica::new(i, config.clone()))
            .collect();
        let sim_config = SimConfig::synchronous(seed, 2, 5_000);
        let mut sim = Simulator::new(replicas, sim_config, failures);
        sim.run();
        let (mut replicas, _) = sim.into_parts();
        for r in replicas.iter_mut() {
            r.force_read(SimTime(5_000));
        }
        replicas
    }

    #[test]
    fn committee_commits_one_block_per_round_without_forks() {
        let replicas = run(4, vec![0, 1, 2, 3], 6, 1, FailurePlan::none());
        for r in &replicas {
            assert_eq!(r.tree().max_fork_degree(), 1, "no forks ever");
            assert_eq!(r.tree().height(), 6, "all rounds committed");
        }
        let tips: Vec<_> = replicas.iter().map(|r| r.selected().tip().id).collect();
        assert!(tips.iter().all(|&t| t == tips[0]));
    }

    #[test]
    fn non_member_observers_follow_the_committee() {
        // 6 replicas, committee of 4 (consortium à la Red Belly / Fabric).
        let replicas = run(6, vec![0, 1, 2, 3], 5, 2, FailurePlan::none());
        for r in &replicas {
            assert_eq!(
                r.tree().height(),
                5,
                "observers receive committed blocks via votes"
            );
        }
        // Only committee members created blocks.
        for r in &replicas[4..] {
            assert!(r.log.created.is_empty());
        }
    }

    #[test]
    fn crashed_leader_rounds_are_skipped_and_progress_continues() {
        // Process 0 crashes immediately; its leader rounds time out but the
        // chain still grows thanks to the round timeout.
        let replicas = run(
            4,
            vec![0, 1, 2, 3],
            6,
            3,
            FailurePlan::crashing(vec![(0, 1)]),
        );
        let heights: Vec<u64> = replicas[1..].iter().map(|r| r.tree().height()).collect();
        assert!(
            heights.iter().all(|&h| h >= 3),
            "progress despite the crashed leader: {heights:?}"
        );
        for r in &replicas[1..] {
            assert_eq!(r.tree().max_fork_degree(), 1);
        }
    }

    #[test]
    fn sortition_leader_rule_is_deterministic_and_weighted() {
        let rule = LeaderRule::Sortition {
            weights: vec![0.7, 0.1, 0.1, 0.1],
            seed: 99,
        };
        let a: Vec<usize> = (0..50).map(|r| rule.leader(r, 4)).collect();
        let b: Vec<usize> = (0..50).map(|r| rule.leader(r, 4)).collect();
        assert_eq!(a, b, "sortition is deterministic");
        let heavy = a.iter().filter(|&&l| l == 0).count();
        assert!(
            heavy > 20,
            "the heavy-stake member leads most rounds ({heavy}/50)"
        );

        let rr = LeaderRule::RoundRobin;
        assert_eq!(rr.leader(0, 3), 0);
        assert_eq!(rr.leader(4, 3), 1);
    }

    #[test]
    fn quorum_is_a_two_thirds_majority() {
        assert_eq!(CommitteeConfig::new(vec![0, 1, 2, 3], 1).quorum(), 3);
        assert_eq!(CommitteeConfig::new((0..7).collect(), 1).quorum(), 5);
        assert_eq!(CommitteeConfig::new(vec![0], 1).quorum(), 1);
    }
}
