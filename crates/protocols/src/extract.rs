//! Converting replica logs into the paper's history objects.
//!
//! Every protocol replica keeps a [`ReplicaLog`] of what it did: blocks it
//! created (`append` + `update` + `send`), blocks it received and applied
//! (`receive` + `update`) and the chains it read.  After the simulation the
//! logs of all replicas are merged into
//!
//! * a [`BtHistory`] — the concurrent history of
//!   `append`/`read` operations judged by the consistency criteria, and
//! * a [`MessageHistory`] — the
//!   send/receive/update event log judged by the Update-Agreement and LRC
//!   checkers.

use btadt_core::{
    BtHistory, BtOperation, BtResponse, MessageHistory, ReplicaEvent, ReplicaEventKind,
};
use btadt_history::{HistoryRecorder, ProcessId, Timestamp};
use btadt_netsim::SimTime;
use btadt_types::{Block, Blockchain, GENESIS_ID};

/// What one replica recorded during a run.
#[derive(Clone, Debug, Default)]
pub struct ReplicaLog {
    /// Blocks this replica created, with creation time.
    pub created: Vec<(SimTime, Block)>,
    /// Blocks this replica received from the network, with delivery time.
    pub received: Vec<(SimTime, Block)>,
    /// Blocks this replica applied to its local tree, with application time.
    pub applied: Vec<(SimTime, Block)>,
    /// Chains this replica read, with read time.
    pub reads: Vec<(SimTime, Blockchain)>,
}

impl ReplicaLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        ReplicaLog::default()
    }

    /// Records a block creation.
    pub fn record_created(&mut self, at: SimTime, block: Block) {
        self.created.push((at, block));
    }

    /// Records a block reception.
    pub fn record_received(&mut self, at: SimTime, block: Block) {
        self.received.push((at, block));
    }

    /// Records a local tree update.
    pub fn record_applied(&mut self, at: SimTime, block: Block) {
        self.applied.push((at, block));
    }

    /// Records a read.
    pub fn record_read(&mut self, at: SimTime, chain: Blockchain) {
        self.reads.push((at, chain));
    }
}

/// Spreads simulator ticks so that invocation/response pairs fit between
/// consecutive network events.
fn ts(at: SimTime, offset: u64) -> Timestamp {
    Timestamp(at.0 * 10 + offset)
}

/// Merges per-replica logs into the BT history and the message history.
///
/// Block creations become successful `append` operations by their creator;
/// reads become `read` operations; creations/receptions/applications become
/// `send`/`receive`/`update` events.
pub fn build_histories(logs: &[ReplicaLog]) -> (BtHistory, MessageHistory) {
    let mut messages = MessageHistory::new();
    // Collect all BT operations as scripted records ordered by time.
    let mut recorder: HistoryRecorder<BtOperation, BtResponse> = HistoryRecorder::new();

    // Gather (time, process, op) triples first so they can be replayed in
    // global time order (sequence numbers must follow per-process order).
    enum Pending {
        Append(Block),
        Read(Blockchain),
    }
    let mut ops: Vec<(SimTime, usize, Pending)> = Vec::new();

    for (p, log) in logs.iter().enumerate() {
        for (at, block) in &log.created {
            ops.push((*at, p, Pending::Append(block.clone())));
            messages.record(ReplicaEvent {
                process: ProcessId(p as u32),
                kind: ReplicaEventKind::Send {
                    parent: block.parent.unwrap_or(GENESIS_ID),
                    block: block.clone(),
                },
                at: ts(*at, 1),
            });
        }
        for (at, block) in &log.received {
            messages.record(ReplicaEvent {
                process: ProcessId(p as u32),
                kind: ReplicaEventKind::Receive {
                    parent: block.parent.unwrap_or(GENESIS_ID),
                    block: block.clone(),
                },
                at: ts(*at, 2),
            });
        }
        for (at, block) in &log.applied {
            messages.record(ReplicaEvent {
                process: ProcessId(p as u32),
                kind: ReplicaEventKind::Update {
                    parent: block.parent.unwrap_or(GENESIS_ID),
                    block: block.clone(),
                },
                at: ts(*at, 3),
            });
        }
        for (at, chain) in &log.reads {
            ops.push((*at, p, Pending::Read(chain.clone())));
        }
    }

    ops.sort_by_key(|(at, p, _)| (*at, *p));
    for (at, p, op) in ops {
        match op {
            Pending::Append(block) => {
                recorder.scripted(
                    ProcessId(p as u32),
                    ts(at, 4),
                    ts(at, 5),
                    BtOperation::Append(block),
                    BtResponse::Appended(true),
                );
            }
            Pending::Read(chain) => {
                recorder.scripted(
                    ProcessId(p as u32),
                    ts(at, 6),
                    ts(at, 7),
                    BtOperation::Read,
                    BtResponse::Chain(chain),
                );
            }
        }
    }

    (recorder.into_history(), messages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use btadt_core::ops::BtHistoryExt;
    use btadt_core::UpdateAgreement;
    use btadt_types::BlockBuilder;

    #[test]
    fn build_histories_converts_logs_into_both_views() {
        let b = BlockBuilder::new(&Block::genesis())
            .nonce(1)
            .producer(0)
            .build();
        let chain = Blockchain::genesis_only().extended_with(b.clone()).unwrap();

        let mut creator = ReplicaLog::new();
        creator.record_created(SimTime(1), b.clone());
        creator.record_applied(SimTime(1), b.clone());
        creator.record_read(SimTime(2), chain.clone());

        let mut follower = ReplicaLog::new();
        follower.record_received(SimTime(3), b.clone());
        follower.record_applied(SimTime(3), b.clone());
        follower.record_read(SimTime(4), chain.clone());

        let (history, messages) = build_histories(&[creator, follower]);
        assert_eq!(history.appends().len(), 1);
        assert_eq!(history.reads().len(), 2);
        assert_eq!(messages.sends().count(), 1);
        assert_eq!(messages.receives().count(), 1);
        assert_eq!(messages.updates().count(), 2);

        // The creator's append precedes the follower's read in program order.
        let append = history.appends()[0].0;
        let late_read = history.reads()[1].0;
        assert!(history.program_order(append, late_read));

        // A fully delivered run satisfies the Update Agreement.
        assert!(UpdateAgreement::all_correct(&messages).holds(&messages));
    }

    #[test]
    fn reads_are_ordered_globally_by_time() {
        let mut a = ReplicaLog::new();
        a.record_read(SimTime(5), Blockchain::genesis_only());
        let mut b = ReplicaLog::new();
        b.record_read(SimTime(2), Blockchain::genesis_only());
        let (history, _) = build_histories(&[a, b]);
        let reads = history.reads();
        assert_eq!(reads[0].0.process, ProcessId(1), "earlier read comes first");
        assert_eq!(reads[1].0.process, ProcessId(0));
    }

    #[test]
    fn empty_logs_produce_empty_histories() {
        let (history, messages) = build_histories(&[ReplicaLog::new(), ReplicaLog::new()]);
        assert!(history.is_empty());
        assert!(messages.is_empty());
    }
}
