//! Per-process crash-recovery journal (an in-memory write-ahead log).
//!
//! Every block a replica *applies* — self-mined or accepted from a peer —
//! is appended to its journal with a monotone sequence number, in exactly
//! the order the replica's tree accepted it.  Because a block's parent is
//! always applied before the block itself, replaying the journal in
//! sequence order rebuilds the pre-crash tree without ever orphaning.
//!
//! The journal models durable local storage in the crash-recovery fault
//! model: on a churn rejoin with
//! [`RecoveryMode::Journal`], the replica's volatile state is wiped, the
//! WAL is replayed first, and delta sync then only has to cover the *gap*
//! the process missed while down — strictly fewer gossip rounds than the
//! full re-sync a [`RecoveryMode::Restart`] rejoin needs (see
//! `BENCH_robustness.json`).

use btadt_types::Block;

/// How a journaled block entered the replica.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JournalKind {
    /// The replica mined the block itself.  These are the entries only the
    /// journal can restore: a block mined while partitioned may exist
    /// nowhere else in the network.
    Mined,
    /// The block was accepted from a peer (flood or delta sync).
    Accepted,
}

/// One entry of the write-ahead log.
#[derive(Clone, Debug)]
pub struct JournalEntry {
    /// Monotone per-process sequence number (application order).
    pub seq: u64,
    /// Whether the block was self-mined or accepted.
    pub kind: JournalKind,
    /// The journaled block.
    pub block: Block,
}

/// The append-only write-ahead log of one replica.
#[derive(Clone, Debug, Default)]
pub struct Journal {
    entries: Vec<JournalEntry>,
    next_seq: u64,
}

impl Journal {
    /// An empty journal.
    pub fn new() -> Self {
        Journal::default()
    }

    /// Appends a block, returning its sequence number.
    pub fn append(&mut self, kind: JournalKind, block: Block) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push(JournalEntry { seq, kind, block });
        seq
    }

    /// Number of journaled entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` iff nothing has been journaled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries in application (= replay) order.
    pub fn entries(&self) -> &[JournalEntry] {
        &self.entries
    }

    /// The journaled blocks in replay order.
    pub fn blocks(&self) -> impl Iterator<Item = &Block> {
        self.entries.iter().map(|e| &e.block)
    }

    /// The self-mined blocks in replay order.
    pub fn mined(&self) -> impl Iterator<Item = &Block> {
        self.entries
            .iter()
            .filter(|e| e.kind == JournalKind::Mined)
            .map(|e| &e.block)
    }

    /// Wipes the journal (a restart *without* durable storage loses it).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.next_seq = 0;
    }
}

/// What a replica's `on_rejoin` does with its state after a churn window.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RecoveryMode {
    /// Volatile state survives the window (a paused process, not a crashed
    /// one).  This is the historical behavior and the default.
    #[default]
    Retain,
    /// Crash-stop then restart with no durable storage: the tree is wiped
    /// and rebuilt from genesis via full delta re-sync.
    Restart,
    /// Crash then recover from the write-ahead journal: replay the WAL
    /// first, then delta-sync only the gap missed while down.
    Journal,
    /// Crash then recover from the durable chunked block store of
    /// `btadt-store`: run the checksum-verifying recovery pipeline
    /// (truncate the torn tail, quarantine corrupt chunks), replay the
    /// surviving blocks orphan-tolerantly, and delta-sync both the churn
    /// gap *and* whatever corruption cost.  Requires a store attached via
    /// `GossipSync::with_durable_store`; without one it degrades to
    /// [`RecoveryMode::Restart`].
    Checkpoint,
}

impl RecoveryMode {
    /// Short label used by benches and reports.
    pub fn label(self) -> &'static str {
        match self {
            RecoveryMode::Retain => "retain",
            RecoveryMode::Restart => "restart",
            RecoveryMode::Journal => "journal",
            RecoveryMode::Checkpoint => "checkpoint",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btadt_types::BlockBuilder;

    #[test]
    fn sequence_numbers_are_monotone_and_entries_keep_order() {
        let mut j = Journal::new();
        assert!(j.is_empty());
        let genesis = Block::genesis();
        let a = BlockBuilder::new(&genesis).nonce(1).build();
        let b = BlockBuilder::new(&a).nonce(2).build();
        assert_eq!(j.append(JournalKind::Mined, a.clone()), 0);
        assert_eq!(j.append(JournalKind::Accepted, b.clone()), 1);
        assert_eq!(j.len(), 2);
        let ids: Vec<_> = j.blocks().map(|x| x.id).collect();
        assert_eq!(ids, vec![a.id, b.id]);
        let mined: Vec<_> = j.mined().map(|x| x.id).collect();
        assert_eq!(mined, vec![a.id]);
        assert_eq!(j.entries()[1].seq, 1);
    }

    #[test]
    fn clear_wipes_entries_and_resets_sequencing() {
        let mut j = Journal::new();
        j.append(JournalKind::Mined, Block::genesis());
        j.clear();
        assert!(j.is_empty());
        assert_eq!(j.append(JournalKind::Accepted, Block::genesis()), 0);
    }

    #[test]
    fn recovery_mode_labels() {
        assert_eq!(RecoveryMode::default(), RecoveryMode::Retain);
        assert_eq!(RecoveryMode::Retain.label(), "retain");
        assert_eq!(RecoveryMode::Restart.label(), "restart");
        assert_eq!(RecoveryMode::Journal.label(), "journal");
        assert_eq!(RecoveryMode::Checkpoint.label(), "checkpoint");
    }
}
