//! Regenerating Table 1: running each system model and classifying the
//! histories it produces.
//!
//! For every named system the driver builds the corresponding protocol
//! configuration (family, selection function, merit distribution,
//! committee), runs it on the deterministic simulator, converts the replica
//! logs into a BT history, and checks BT Strong Consistency and BT Eventual
//! Consistency.  A [`TableRow`] compares the observed classification with
//! the refinement the paper assigns to the system.

use std::sync::Arc;

use btadt_core::{eventual_consistency, strong_consistency, BtHistory, MessageHistory};
use btadt_history::ConsistencyCriterion;
use btadt_netsim::{FailurePlan, SimConfig, SimTime, Simulator};
use btadt_types::{AlwaysValid, GhostSelection, LengthScore, LongestChain};

use crate::committee::{CommitteeConfig, CommitteeReplica, LeaderRule};
use crate::extract::{build_histories, ReplicaLog};
use crate::pow::{PowConfig, PowReplica};

/// The systems classified by Table 1 of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SystemModel {
    /// Bitcoin: PoW flooding, longest/heaviest chain, prodigal oracle.
    Bitcoin,
    /// Ethereum: PoW flooding, GHOST selection, prodigal oracle.
    Ethereum,
    /// Algorand: stake-weighted sortition committee, frugal k=1.
    Algorand,
    /// ByzCoin: PoW-elected committee running PBFT-style commit, frugal k=1.
    ByzCoin,
    /// PeerCensus: committee-tracked strong consistency, frugal k=1.
    PeerCensus,
    /// Red Belly: consortium Byzantine consensus, frugal k=1.
    RedBelly,
    /// Hyperledger Fabric: ordering service, frugal k=1.
    HyperledgerFabric,
}

impl SystemModel {
    /// All systems of Table 1, in the paper's order.
    pub fn all() -> [SystemModel; 7] {
        [
            SystemModel::Bitcoin,
            SystemModel::Ethereum,
            SystemModel::Algorand,
            SystemModel::ByzCoin,
            SystemModel::PeerCensus,
            SystemModel::RedBelly,
            SystemModel::HyperledgerFabric,
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SystemModel::Bitcoin => "Bitcoin",
            SystemModel::Ethereum => "Ethereum",
            SystemModel::Algorand => "Algorand",
            SystemModel::ByzCoin => "ByzCoin",
            SystemModel::PeerCensus => "PeerCensus",
            SystemModel::RedBelly => "Red Belly",
            SystemModel::HyperledgerFabric => "Hyperledger Fabric",
        }
    }

    /// The refinement the paper assigns to the system (Table 1).
    pub fn paper_refinement(self) -> &'static str {
        match self {
            SystemModel::Bitcoin | SystemModel::Ethereum => "R(BT-ADT_EC, ΘP)",
            _ => "R(BT-ADT_SC, ΘF,k=1)",
        }
    }

    /// Whether the paper classifies the system as strongly consistent.
    pub fn paper_strong(self) -> bool {
        !matches!(self, SystemModel::Bitcoin | SystemModel::Ethereum)
    }
}

/// Parameters of one classification run.
#[derive(Clone, Copy, Debug)]
pub struct ProtocolSpec {
    /// Which system to model.
    pub system: SystemModel,
    /// Number of replicas.
    pub replicas: usize,
    /// Seed of the run.
    pub seed: u64,
    /// Length of the active phase: mining horizon (PoW family) or number of
    /// rounds (committee family).
    pub duration: u64,
}

impl ProtocolSpec {
    /// A default-sized run for the given system.
    pub fn new(system: SystemModel, seed: u64) -> Self {
        ProtocolSpec {
            system,
            replicas: 8,
            seed,
            duration: 30,
        }
    }
}

/// The outcome of classifying one run.
#[derive(Clone, Debug)]
pub struct Classification {
    /// Whether the history satisfied BT Strong Consistency.
    pub strong: bool,
    /// Whether the history satisfied BT Eventual Consistency.
    pub eventual: bool,
    /// Maximum observed fork degree across replicas' trees.
    pub max_fork_degree: usize,
    /// Total number of blocks created during the run.
    pub blocks_created: usize,
    /// Number of read operations in the history.
    pub reads: usize,
    /// The BT history (for further inspection).
    pub history: BtHistory,
    /// The message history (for Update-Agreement / LRC checks).
    pub messages: MessageHistory,
}

fn sim_horizon(duration: u64) -> u64 {
    duration * 40 + 200
}

fn run_pow(spec: ProtocolSpec, ghost: bool) -> (Vec<ReplicaLog>, usize) {
    let selection: Arc<dyn btadt_types::SelectionFunction> = if ghost {
        Arc::new(GhostSelection::new())
    } else {
        Arc::new(LongestChain::new())
    };
    let config = PowConfig {
        selection,
        success_probability: 0.12,
        mine_interval: 1,
        mine_until: spec.duration * 4,
        sync_interval: 8,
        seed: spec.seed,
        recovery: crate::journal::RecoveryMode::default(),
    };
    let replicas: Vec<PowReplica> = (0..spec.replicas)
        .map(|i| PowReplica::new(i, config.clone()))
        .collect();
    let sim_config = SimConfig::synchronous(spec.seed, 3, sim_horizon(spec.duration));
    let mut sim = Simulator::new(replicas, sim_config, FailurePlan::none());
    sim.run();
    let (mut replicas, _) = sim.into_parts();
    let final_time = SimTime(sim_horizon(spec.duration));
    for r in replicas.iter_mut() {
        r.force_read(final_time);
    }
    let max_fork = replicas
        .iter()
        .map(|r| r.tree().max_fork_degree())
        .max()
        .unwrap_or(0);
    (replicas.into_iter().map(|r| r.log).collect(), max_fork)
}

fn run_committee(
    spec: ProtocolSpec,
    leader_rule: LeaderRule,
    committee: Vec<usize>,
) -> (Vec<ReplicaLog>, usize) {
    let config = CommitteeConfig {
        committee,
        leader_rule,
        rounds: spec.duration,
        round_timeout: 20,
        selection: Arc::new(LongestChain::new()),
    };
    let replicas: Vec<CommitteeReplica> = (0..spec.replicas)
        .map(|i| CommitteeReplica::new(i, config.clone()))
        .collect();
    let sim_config = SimConfig::synchronous(spec.seed, 2, sim_horizon(spec.duration));
    let mut sim = Simulator::new(replicas, sim_config, FailurePlan::none());
    sim.run();
    let (mut replicas, _) = sim.into_parts();
    let final_time = SimTime(sim_horizon(spec.duration));
    for r in replicas.iter_mut() {
        r.force_read(final_time);
    }
    let max_fork = replicas
        .iter()
        .map(|r| r.tree().max_fork_degree())
        .max()
        .unwrap_or(0);
    (replicas.into_iter().map(|r| r.log).collect(), max_fork)
}

/// Runs the protocol model for `spec` and classifies the resulting history.
pub fn classify(spec: ProtocolSpec) -> Classification {
    let (logs, max_fork_degree) = match spec.system {
        SystemModel::Bitcoin => run_pow(spec, false),
        SystemModel::Ethereum => run_pow(spec, true),
        SystemModel::Algorand => {
            // Every replica is a potential committee member, weighted by stake.
            let weights: Vec<f64> = (0..spec.replicas)
                .map(|i| 1.0 + (i % 3) as f64) // heterogeneous stake
                .collect();
            run_committee(
                spec,
                LeaderRule::Sortition {
                    weights,
                    seed: spec.seed,
                },
                (0..spec.replicas).collect(),
            )
        }
        SystemModel::ByzCoin | SystemModel::PeerCensus => {
            // The committee is the set of recent miners; modelled as a fixed
            // majority subset of the replicas.
            let committee: Vec<usize> = (0..spec.replicas).collect();
            run_committee(spec, LeaderRule::RoundRobin, committee)
        }
        SystemModel::RedBelly | SystemModel::HyperledgerFabric => {
            // Consortium: only a subset of the replicas may append.
            let members = (spec.replicas / 2).max(4).min(spec.replicas);
            run_committee(spec, LeaderRule::RoundRobin, (0..members).collect())
        }
    };

    let blocks_created = logs.iter().map(|l| l.created.len()).sum();
    let (history, messages) = build_histories(&logs);

    let sc = strong_consistency(Arc::new(LengthScore), Arc::new(AlwaysValid));
    let ec = eventual_consistency(Arc::new(LengthScore), Arc::new(AlwaysValid));
    let reads = btadt_core::ops::BtHistoryExt::reads(&history).len();

    Classification {
        strong: sc.admits(&history),
        eventual: ec.admits(&history),
        max_fork_degree,
        blocks_created,
        reads,
        history,
        messages,
    }
}

/// One row of the regenerated Table 1.
#[derive(Clone, Debug)]
pub struct TableRow {
    /// The system.
    pub system: SystemModel,
    /// The refinement the paper assigns.
    pub paper: &'static str,
    /// Observed Strong Consistency.
    pub observed_strong: bool,
    /// Observed Eventual Consistency.
    pub observed_eventual: bool,
    /// Observed maximum fork degree.
    pub max_fork_degree: usize,
    /// Blocks created during the run.
    pub blocks_created: usize,
    /// Whether the observation matches the paper's classification.
    pub matches_paper: bool,
}

impl TableRow {
    /// Formats the row for the text report printed by the `table1` binary.
    pub fn format(&self) -> String {
        format!(
            "{:<20} {:<26} SC={:<5} EC={:<5} forks={:<3} blocks={:<4} {}",
            self.system.name(),
            self.paper,
            self.observed_strong,
            self.observed_eventual,
            self.max_fork_degree,
            self.blocks_created,
            if self.matches_paper {
                "✓ matches paper"
            } else {
                "✗ MISMATCH"
            }
        )
    }
}

/// Regenerates Table 1: runs every system model and compares the observed
/// classification to the paper's.
pub fn table1(replicas: usize, duration: u64, seed: u64) -> Vec<TableRow> {
    SystemModel::all()
        .into_iter()
        .map(|system| {
            let spec = ProtocolSpec {
                system,
                replicas,
                seed,
                duration,
            };
            let c = classify(spec);
            let matches_paper = if system.paper_strong() {
                c.strong && c.eventual
            } else {
                // The paper's claim is "only Eventual consistency": the PoW
                // systems must satisfy EC; a fork-free lucky run may also
                // satisfy SC, so only EC is required for a match, plus the
                // run must have actually exercised forks when SC failed.
                c.eventual
            };
            TableRow {
                system,
                paper: system.paper_refinement(),
                observed_strong: c.strong,
                observed_eventual: c.eventual,
                max_fork_degree: c.max_fork_degree,
                blocks_created: c.blocks_created,
                matches_paper,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use btadt_core::UpdateAgreement;

    fn spec(system: SystemModel) -> ProtocolSpec {
        ProtocolSpec {
            system,
            replicas: 6,
            seed: 42,
            duration: 12,
        }
    }

    #[test]
    fn bitcoin_is_eventually_but_not_strongly_consistent() {
        let c = classify(spec(SystemModel::Bitcoin));
        assert!(c.eventual, "Bitcoin run must satisfy EC");
        assert!(!c.strong, "PoW forks must break Strong Prefix");
        assert!(c.max_fork_degree > 1, "the run must actually fork");
        assert!(c.blocks_created > 0);
    }

    #[test]
    fn ethereum_with_ghost_is_eventually_consistent() {
        let c = classify(spec(SystemModel::Ethereum));
        assert!(c.eventual);
        assert!(c.blocks_created > 0);
    }

    #[test]
    fn committee_systems_are_strongly_consistent() {
        for system in [
            SystemModel::Algorand,
            SystemModel::ByzCoin,
            SystemModel::RedBelly,
            SystemModel::HyperledgerFabric,
        ] {
            let c = classify(spec(system));
            assert!(c.strong, "{} must satisfy SC", system.name());
            assert!(c.eventual, "{} must satisfy EC", system.name());
            assert_eq!(c.max_fork_degree, 1, "{} never forks", system.name());
        }
    }

    #[test]
    fn full_delivery_runs_satisfy_update_agreement() {
        let c = classify(spec(SystemModel::PeerCensus));
        let ua = UpdateAgreement::all_correct(&c.messages);
        assert!(ua.holds(&c.messages));
    }

    #[test]
    fn table1_matches_the_paper() {
        let rows = table1(6, 10, 7);
        assert_eq!(rows.len(), 7);
        for row in &rows {
            assert!(row.matches_paper, "{}", row.format());
        }
        // The two PoW rows must additionally have failed SC (forks observed).
        for row in rows.iter().take(2) {
            assert!(!row.observed_strong, "{}", row.format());
        }
        // And the committee rows must have passed SC.
        for row in rows.iter().skip(2) {
            assert!(row.observed_strong, "{}", row.format());
        }
    }

    #[test]
    fn system_metadata_is_consistent() {
        assert_eq!(SystemModel::all().len(), 7);
        assert!(SystemModel::Bitcoin.paper_refinement().contains("ΘP"));
        assert!(SystemModel::RedBelly.paper_refinement().contains("k=1"));
        assert!(!SystemModel::Ethereum.paper_strong());
        assert!(SystemModel::Algorand.paper_strong());
    }
}
