//! Adversarial proof-of-work miners.
//!
//! The PoW family of Section 5 assumes miners flood every block they
//! produce; the scenario engine stresses the consistency criteria by
//! deploying miners that do not:
//!
//! * **selfish miners** ([`Strategy::Selfish`]) mine on a *private* branch
//!   and only publish it when the honest chain threatens to catch up
//!   (the Eyal–Sirer schedule, here with a lead-1 release rule).  Released
//!   private branches orphan honest work and deepen forks, attacking
//!   Strong Prefix;
//! * **withholding miners** ([`Strategy::Withhold`]) release each mined
//!   block only after a fixed delay, widening the window in which honest
//!   miners extend a stale tip — a tunable fork-pressure knob.
//!
//! Both are [`AdversarialMiner`]s sharing the honest replica's tree,
//! orphan-repair and delta-sync machinery; their *sync responses never leak
//! withheld blocks* (an adversary that answered `SyncRequest` with its
//! private branch would be publishing it).  The [`Miner`] enum packs honest
//! and adversarial replicas into the single process type the simulator
//! needs.
//!
//! Adversarial replicas log the blocks they create and apply (the
//! consistency criteria must see their appends), but record **no reads**:
//! criterion verdicts measure the history as observed by honest clients
//! under attack, not the adversary's private view.

use std::collections::HashSet;
use std::sync::Arc;

use btadt_netsim::{AdversaryMix, AdversaryRole, Context, Process, SimTime};
use btadt_oracle::{Cell, Tape};
use btadt_types::{Block, BlockId, BlockTree, Blockchain};

use crate::extract::ReplicaLog;
use crate::gossip::{self, GossipSync, ResponseClass, RETRY_TIMER, SYNC_TAIL_ROUNDS};
use crate::journal::RecoveryMode;
use crate::messages::Msg;
use crate::pow::{PowConfig, PowReplica};

const MINE_TIMER: u64 = 1;
const SYNC_TIMER: u64 = 2;
const RELEASE_TIMER: u64 = 3;

/// The withholding schedule of an [`AdversarialMiner`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Keep the private branch secret until the public chain is within one
    /// block of it, then release the whole branch.
    Selfish,
    /// Release each mined block `delay` ticks after mining it.
    Withhold {
        /// Ticks between mining a block and flooding it.
        delay: u64,
    },
}

/// A proof-of-work miner that withholds blocks according to a
/// [`Strategy`].
pub struct AdversarialMiner {
    id: usize,
    config: PowConfig,
    strategy: Strategy,
    tape: Tape,
    /// Local tree plus the shared orphan-repair / delta-sync machinery.
    sync: GossipSync,
    /// Own blocks not yet flooded, oldest first (the private branch for
    /// selfish miners, the release queue for withholding miners).
    withheld: Vec<Block>,
    withheld_ids: HashSet<BlockId>,
    /// Highest height among blocks known to be public (foreign blocks and
    /// own released ones).
    public_height: u64,
    next_tx: u64,
    /// Everything this replica did (reads excluded by design; see the
    /// module docs).
    pub log: ReplicaLog,
}

impl AdversarialMiner {
    /// Creates an adversarial miner.
    pub fn new(id: usize, config: PowConfig, strategy: Strategy) -> Self {
        let tape = Tape::new(config.seed, id as u64, config.success_probability);
        AdversarialMiner {
            id,
            config,
            strategy,
            tape,
            sync: GossipSync::new(id),
            withheld: Vec::new(),
            withheld_ids: HashSet::new(),
            public_height: 0,
            next_tx: 1,
            log: ReplicaLog::new(),
        }
    }

    /// The miner's local tree (private branch included).
    pub fn tree(&self) -> &BlockTree {
        self.sync.tree()
    }

    /// The chain the miner mines on (private branch included).
    pub fn selected(&self) -> Blockchain {
        self.config.selection.select(self.sync.tree())
    }

    /// Blocks mined but not yet released.
    pub fn withheld(&self) -> &[Block] {
        &self.withheld
    }

    fn note_public(&mut self, height: u64) {
        self.public_height = self.public_height.max(height);
    }

    /// Floods the entire withheld branch, oldest first.
    fn release_all(&mut self, ctx: &mut Context<Msg>) {
        for block in std::mem::take(&mut self.withheld) {
            self.withheld_ids.remove(&block.id);
            self.note_public(block.height);
            ctx.broadcast(Msg::NewBlock(block));
        }
    }

    /// Selfish release rule: publish the private branch as soon as the
    /// public chain is within one block of its tip (lead ≤ 1), so honest
    /// blocks at the contested heights are orphaned by the longer private
    /// branch.
    fn maybe_release_selfish(&mut self, ctx: &mut Context<Msg>) {
        if let Some(tip) = self.withheld.last() {
            if self.public_height + 1 >= tip.height {
                self.release_all(ctx);
            }
        }
    }

    fn mine(&mut self, ctx: &mut Context<Msg>) {
        if self.tape.pop() != Cell::Token {
            return;
        }
        let parent = self.selected().tip().clone();
        let block = crate::gossip::mint_block(self.id, ctx.n(), &mut self.next_tx, &parent);
        let at = ctx.now();
        self.log.record_created(at, block.clone());
        self.sync
            .insert_with_orphans(at, block.clone(), &mut self.log);
        self.withheld_ids.insert(block.id);
        self.withheld.push(block);
        match self.strategy {
            Strategy::Selfish => {
                // Mining extends the lead; nothing is released until the
                // public chain threatens it.
            }
            Strategy::Withhold { delay } => {
                ctx.set_timer(delay, RELEASE_TIMER);
            }
        }
    }
}

impl Process<Msg> for AdversarialMiner {
    fn on_start(&mut self, ctx: &mut Context<Msg>) {
        ctx.set_timer(self.config.mine_interval, MINE_TIMER);
        if self.config.sync_interval > 0 {
            ctx.set_timer(self.config.sync_interval, SYNC_TIMER);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<Msg>, from: usize, msg: Msg) {
        let at = ctx.now();
        self.sync.note_alive(from, ctx.n());
        match msg {
            Msg::NewBlock(block) => {
                if !self.sync.contains(block.id) {
                    self.log.record_received(at, block.clone());
                    self.note_public(block.height);
                    if !self.sync.insert_with_orphans(at, block, &mut self.log) {
                        self.sync.request_delta_sync(ctx, from);
                    }
                    if self.strategy == Strategy::Selfish {
                        self.maybe_release_selfish(ctx);
                    }
                }
            }
            Msg::Blocks { request_id, blocks } => {
                if self.sync.classify_response(request_id, blocks.len()) == ResponseClass::Stale {
                    return;
                }
                let batch_len = blocks.len();
                let batch_max = blocks.iter().map(|b| b.height).max().unwrap_or(0);
                let fresh: Vec<Block> = blocks
                    .into_iter()
                    .filter(|b| !self.sync.contains(b.id))
                    .collect();
                for block in &fresh {
                    self.log.record_received(at, block.clone());
                    self.note_public(block.height);
                }
                self.sync.apply_batch(at, fresh, &mut self.log);
                if self.strategy == Strategy::Selfish {
                    self.maybe_release_selfish(ctx);
                }
                self.sync.after_blocks(ctx, from, batch_len, batch_max);
            }
            Msg::SyncRequest {
                request_id,
                above_height,
            } => {
                // Never leak the private branch: a sync response is a
                // publication.  The reply is still always sent (possibly
                // empty) so the requester can clear its pending request —
                // staying silent would out the adversary as unresponsive.
                let mut delta: Vec<Block> = self
                    .sync
                    .tree()
                    .delta_above(above_height)
                    .into_iter()
                    .filter(|b| !self.withheld_ids.contains(&b.id))
                    .collect();
                gossip::truncate_batch(&mut delta);
                ctx.send(
                    from,
                    Msg::Blocks {
                        request_id,
                        blocks: delta,
                    },
                );
            }
            Msg::Propose { .. } | Msg::Vote { .. } => {}
        }
    }

    fn on_corrupted(&mut self, ctx: &mut Context<Msg>, from: usize) {
        self.sync.note_corrupted(from, ctx.n());
    }

    fn on_timer(&mut self, ctx: &mut Context<Msg>, timer_id: u64) {
        match timer_id {
            MINE_TIMER if ctx.now().0 <= self.config.mine_until => {
                self.mine(ctx);
                ctx.set_timer(self.config.mine_interval, MINE_TIMER);
            }
            // Mining is over; a selfish miner holding a lead it will never
            // extend publishes it rather than discard the work.
            MINE_TIMER if self.strategy == Strategy::Selfish => self.release_all(ctx),
            SYNC_TIMER => {
                self.sync.anti_entropy(ctx);
                let sync_until =
                    self.config.mine_until + SYNC_TAIL_ROUNDS * self.config.sync_interval;
                if ctx.now().0 <= sync_until {
                    ctx.set_timer(self.config.sync_interval, SYNC_TIMER);
                }
            }
            RETRY_TIMER => self.sync.on_retry_timer(ctx),
            RELEASE_TIMER if !self.withheld.is_empty() => {
                let block = self.withheld.remove(0);
                self.withheld_ids.remove(&block.id);
                self.note_public(block.height);
                ctx.broadcast(Msg::NewBlock(block));
            }
            _ => {}
        }
    }

    fn on_rejoin(&mut self, ctx: &mut Context<Msg>) {
        // An adversary models a paused process, never a crash-recovery: it
        // keeps its private branch across churn windows, but still bumps
        // its incarnation so stale sync responses are recognised.
        self.sync.note_rejoin(RecoveryMode::Retain);
        self.on_start(ctx);
        // RELEASE_TIMERs armed before a churn window died with the old
        // incarnation; without re-arming, a withholding miner's pending
        // blocks would be stranded forever.  One timer per pending block,
        // spaced by the configured delay (fires on an already-drained queue
        // are no-ops thanks to the `!withheld.is_empty()` guard).
        if let Strategy::Withhold { delay } = self.strategy {
            for k in 0..self.withheld.len() as u64 {
                ctx.set_timer(delay * (k + 1), RELEASE_TIMER);
            }
        }
    }
}

/// An honest or adversarial PoW miner — the single process type a
/// heterogeneous mining simulation runs on.
pub enum Miner {
    /// An honest flooding replica.
    Honest(PowReplica),
    /// A withholding/selfish replica.
    Adversarial(AdversarialMiner),
}

impl Miner {
    /// The replica's local tree.
    pub fn tree(&self) -> &BlockTree {
        match self {
            Miner::Honest(r) => r.tree(),
            Miner::Adversarial(r) => r.tree(),
        }
    }

    /// The replica's selected chain.
    pub fn selected(&self) -> Blockchain {
        match self {
            Miner::Honest(r) => r.selected(),
            Miner::Adversarial(r) => r.selected(),
        }
    }

    /// The replica's log.
    pub fn log(&self) -> &ReplicaLog {
        match self {
            Miner::Honest(r) => &r.log,
            Miner::Adversarial(r) => &r.log,
        }
    }

    /// Whether the replica plays the honest protocol.
    pub fn is_honest(&self) -> bool {
        matches!(self, Miner::Honest(_))
    }

    /// Forces a read on honest replicas (adversaries record no reads; see
    /// the module docs).
    pub fn force_read(&mut self, at: SimTime) {
        if let Miner::Honest(r) = self {
            r.force_read(at);
        }
    }
}

impl Process<Msg> for Miner {
    fn on_start(&mut self, ctx: &mut Context<Msg>) {
        match self {
            Miner::Honest(r) => r.on_start(ctx),
            Miner::Adversarial(r) => r.on_start(ctx),
        }
    }

    fn on_message(&mut self, ctx: &mut Context<Msg>, from: usize, msg: Msg) {
        match self {
            Miner::Honest(r) => r.on_message(ctx, from, msg),
            Miner::Adversarial(r) => r.on_message(ctx, from, msg),
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<Msg>, timer_id: u64) {
        match self {
            Miner::Honest(r) => r.on_timer(ctx, timer_id),
            Miner::Adversarial(r) => r.on_timer(ctx, timer_id),
        }
    }

    fn on_rejoin(&mut self, ctx: &mut Context<Msg>) {
        match self {
            Miner::Honest(r) => r.on_rejoin(ctx),
            Miner::Adversarial(r) => r.on_rejoin(ctx),
        }
    }
}

/// Builds the miner population an [`AdversaryMix`] prescribes: honest
/// replicas at the low indices, selfish then withholding miners at the
/// high ones (the [`AdversaryMix::role_of`] convention).
pub fn build_miners(
    nodes: usize,
    mix: AdversaryMix,
    config: &PowConfig,
    withhold_delay: u64,
) -> Vec<Miner> {
    (0..nodes)
        .map(|i| match mix.role_of(i, nodes) {
            AdversaryRole::Honest => Miner::Honest(PowReplica::new(i, config.clone())),
            AdversaryRole::Selfish => {
                Miner::Adversarial(AdversarialMiner::new(i, config.clone(), Strategy::Selfish))
            }
            AdversaryRole::Withholding => Miner::Adversarial(AdversarialMiner::new(
                i,
                config.clone(),
                Strategy::Withhold {
                    delay: withhold_delay,
                },
            )),
        })
        .collect()
}

/// A default PoW configuration for scenario cells: longest-chain selection
/// with the scenario's mining horizon and anti-entropy every 8 ticks.
pub fn scenario_pow_config(seed: u64, mine_until: u64) -> PowConfig {
    PowConfig {
        selection: Arc::new(btadt_types::LongestChain::new()),
        success_probability: 0.15,
        mine_interval: 1,
        mine_until,
        sync_interval: 8,
        seed,
        recovery: RecoveryMode::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btadt_netsim::{FailurePlan, SimConfig, Simulator};
    use btadt_types::{BlockBuilder, LongestChain};

    fn certain_config(seed: u64) -> PowConfig {
        PowConfig {
            selection: Arc::new(LongestChain::new()),
            success_probability: 1.0,
            mine_interval: 1,
            mine_until: 100,
            sync_interval: 0,
            seed,
            recovery: RecoveryMode::default(),
        }
    }

    #[test]
    fn selfish_miner_withholds_mined_blocks() {
        let mut miner = AdversarialMiner::new(0, certain_config(1), Strategy::Selfish);
        let mut ctx = Context::new(0, 4, SimTime(1));
        miner.mine(&mut ctx);
        let actions = ctx.into_actions();
        assert!(
            actions.outgoing.is_empty(),
            "a selfish miner floods nothing on success"
        );
        assert_eq!(miner.withheld().len(), 1);
        assert_eq!(miner.log.created.len(), 1);
        assert_eq!(miner.tree().len(), 2, "the private block is in its tree");
    }

    #[test]
    fn sync_responses_never_leak_withheld_blocks() {
        let mut miner = AdversarialMiner::new(0, certain_config(2), Strategy::Selfish);
        let mut ctx = Context::new(0, 4, SimTime(1));
        miner.mine(&mut ctx);
        miner.mine(&mut ctx);
        drop(ctx);
        assert_eq!(miner.withheld().len(), 2);

        let mut ctx = Context::new(0, 4, SimTime(2));
        miner.on_message(
            &mut ctx,
            1,
            Msg::SyncRequest {
                request_id: 7,
                above_height: 0,
            },
        );
        let actions = ctx.into_actions();
        assert_eq!(actions.outgoing.len(), 1, "responders always reply");
        match &actions.outgoing[0].1 {
            Msg::Blocks { request_id, blocks } => {
                assert_eq!(*request_id, 7, "the reply echoes the request id");
                assert!(
                    blocks.is_empty(),
                    "the only blocks above genesis are withheld, so the batch is empty"
                );
            }
            other => panic!("expected a Blocks reply, got {other:?}"),
        }
    }

    #[test]
    fn selfish_miner_releases_when_the_public_chain_catches_up() {
        let mut miner = AdversarialMiner::new(3, certain_config(3), Strategy::Selfish);
        // Mine a private lead of 2 (heights 1 and 2).
        let mut ctx = Context::new(3, 4, SimTime(1));
        miner.mine(&mut ctx);
        miner.mine(&mut ctx);
        assert!(ctx.into_actions().outgoing.is_empty());

        // An honest block at height 1 arrives: public height 1, private tip
        // at height 2 — lead 1, so the whole branch is published.
        let honest = BlockBuilder::new(miner.tree().genesis())
            .producer(0)
            .nonce(99)
            .build();
        let mut ctx = Context::new(3, 4, SimTime(5));
        miner.on_message(&mut ctx, 0, Msg::NewBlock(honest));
        let actions = ctx.into_actions();
        assert_eq!(
            actions.outgoing.len(),
            2,
            "both private blocks are flooded on release"
        );
        assert!(miner.withheld().is_empty());
    }

    #[test]
    fn withholding_miner_releases_on_its_timer() {
        let mut miner =
            AdversarialMiner::new(0, certain_config(4), Strategy::Withhold { delay: 10 });
        let mut ctx = Context::new(0, 3, SimTime(1));
        miner.mine(&mut ctx);
        let actions = ctx.into_actions();
        assert!(actions.outgoing.is_empty());
        assert_eq!(
            actions.timers,
            vec![(10, RELEASE_TIMER)],
            "mining schedules the delayed release"
        );

        let mut ctx = Context::new(0, 3, SimTime(11));
        miner.on_timer(&mut ctx, RELEASE_TIMER);
        let actions = ctx.into_actions();
        assert_eq!(actions.outgoing.len(), 1, "the block is released");
        assert!(miner.withheld().is_empty());
    }

    #[test]
    fn selfish_attack_forks_the_honest_chain_in_simulation() {
        let config = scenario_pow_config(21, 60);
        let mut miners = build_miners(
            5,
            AdversaryMix {
                selfish: 1,
                withholding: 0,
            },
            &config,
            0,
        );
        // Give the adversary outsized hash power so the attack bites.
        if let Miner::Adversarial(adv) = &mut miners[4] {
            *adv = AdversarialMiner::new(
                4,
                PowConfig {
                    success_probability: 0.5,
                    ..config.clone()
                },
                Strategy::Selfish,
            );
        }
        let sim_config = SimConfig::synchronous(21, 3, 800);
        let mut sim = Simulator::new(miners, sim_config, FailurePlan::none());
        sim.run();
        let (miners, _) = sim.into_parts();
        let adversary_blocks = miners[4].log().created.len();
        assert!(
            adversary_blocks > 3,
            "the adversary mined ({adversary_blocks})"
        );
        // Released private blocks must have reached honest trees.
        let honest_tree = miners[0].tree();
        let leaked = miners[4]
            .log()
            .created
            .iter()
            .filter(|(_, b)| honest_tree.contains(b.id))
            .count();
        assert!(leaked > 0, "released branches reach honest replicas");
        let max_fork = miners
            .iter()
            .map(|m| m.tree().max_fork_degree())
            .max()
            .unwrap();
        assert!(max_fork > 1, "the attack creates forks");
    }

    #[test]
    fn withholding_attack_converges_once_blocks_are_released() {
        let config = scenario_pow_config(22, 40);
        let miners = build_miners(
            4,
            AdversaryMix {
                selfish: 0,
                withholding: 1,
            },
            &config,
            12,
        );
        let sim_config = SimConfig::synchronous(22, 3, 800);
        let mut sim = Simulator::new(miners, sim_config, FailurePlan::none());
        sim.run();
        let (miners, _) = sim.into_parts();
        // Everything the withholder mined was eventually released: honest
        // trees contain its blocks.
        let withheld_left: usize = miners
            .iter()
            .filter_map(|m| match m {
                Miner::Adversarial(a) => Some(a.withheld().len()),
                Miner::Honest(_) => None,
            })
            .sum();
        assert_eq!(withheld_left, 0, "all delayed blocks were released");
        let tips: Vec<_> = miners
            .iter()
            .filter(|m| m.is_honest())
            .map(|m| m.selected().tip().id)
            .collect();
        assert!(tips.iter().all(|&t| t == tips[0]), "honest replicas agree");
    }

    #[test]
    fn churned_withholder_still_releases_its_pending_blocks() {
        // The churn window [20, 100) swallows the release timers of every
        // block the withholder mined in [8, 20) (delay 12 puts their expiry
        // inside the window); on_rejoin must re-arm them or the blocks are
        // stranded forever.
        use btadt_netsim::FailurePlan;
        let config = PowConfig {
            success_probability: 0.4,
            ..scenario_pow_config(23, 40)
        };
        let miners = build_miners(
            4,
            AdversaryMix {
                selfish: 0,
                withholding: 1,
            },
            &config,
            12,
        );
        let sim_config = SimConfig::synchronous(23, 3, 800);
        let plan = FailurePlan::none().with_churn(3, 20, 100);
        let mut sim = Simulator::new(miners, sim_config, plan);
        sim.run();
        let (miners, _) = sim.into_parts();
        let withholder_mined = miners[3].log().created.len();
        assert!(
            withholder_mined > 0,
            "the withholder mined before the window"
        );
        let withheld_left: usize = match &miners[3] {
            Miner::Adversarial(a) => a.withheld().len(),
            Miner::Honest(_) => unreachable!(),
        };
        assert_eq!(withheld_left, 0, "rejoin re-armed the stranded releases");
    }

    #[test]
    fn build_miners_assigns_roles_by_the_mix_convention() {
        let config = scenario_pow_config(1, 10);
        let miners = build_miners(
            6,
            AdversaryMix {
                selfish: 1,
                withholding: 2,
            },
            &config,
            5,
        );
        let honesty: Vec<bool> = miners.iter().map(|m| m.is_honest()).collect();
        assert_eq!(honesty, vec![true, true, true, false, false, false]);
    }
}
