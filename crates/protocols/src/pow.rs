//! The proof-of-work flooding family (Bitcoin, Ethereum — Sections 5.1/5.2).
//!
//! Every replica mines independently: on each mining tick it pops its
//! merit-parameterised tape (the Θ_P `getToken` abstraction) and, on
//! success, chains a block to the tip of its locally selected chain, applies
//! it and floods it.  `consumeToken` always succeeds (prodigal oracle), so
//! concurrent miners create forks which the selection function — longest
//! chain for Bitcoin, GHOST for Ethereum — later resolves.
//!
//! Reads are sampled whenever a replica's selected chain grows (blockchain
//! clients expose a monotone view of the chain), plus once at the end of the
//! run; the classification driver adds that final quiescent read.

use std::sync::Arc;

use btadt_netsim::{Context, Process, SimTime};
use btadt_oracle::{Cell, Tape};
use btadt_types::{Block, BlockBuilder, BlockTree, Blockchain, SelectionFunction, Transaction};

use crate::extract::ReplicaLog;
use crate::messages::Msg;

const MINE_TIMER: u64 = 1;

/// Configuration of a proof-of-work replica.
#[derive(Clone)]
pub struct PowConfig {
    /// Selection function (longest chain for Bitcoin, GHOST for Ethereum).
    pub selection: Arc<dyn SelectionFunction>,
    /// Per-tick probability of winning the puzzle (the merit-derived
    /// Bernoulli parameter of the replica's tape).
    pub success_probability: f64,
    /// Interval between mining attempts, in ticks.
    pub mine_interval: u64,
    /// Mining stops after this time; the run then quiesces so outstanding
    /// blocks flood everywhere.
    pub mine_until: u64,
    /// Seed for the replica's tape.
    pub seed: u64,
}

/// A proof-of-work replica.
pub struct PowReplica {
    id: usize,
    config: PowConfig,
    tape: Tape,
    tree: BlockTree,
    orphans: Vec<Block>,
    last_read_score: u64,
    next_tx: u64,
    /// Everything this replica did (read by the classification driver).
    pub log: ReplicaLog,
}

impl PowReplica {
    /// Creates a replica.
    pub fn new(id: usize, config: PowConfig) -> Self {
        let tape = Tape::new(config.seed, id as u64, config.success_probability);
        PowReplica {
            id,
            config,
            tape,
            tree: BlockTree::new(),
            orphans: Vec::new(),
            last_read_score: 0,
            next_tx: 1,
            log: ReplicaLog::new(),
        }
    }

    /// The replica's current local BlockTree.
    pub fn tree(&self) -> &BlockTree {
        &self.tree
    }

    /// The chain currently selected by the replica.
    pub fn selected(&self) -> Blockchain {
        self.config.selection.select(&self.tree)
    }

    fn maybe_read(&mut self, at: SimTime) {
        let chain = self.selected();
        let score = (chain.len() - 1) as u64;
        if score > self.last_read_score {
            self.last_read_score = score;
            self.log.record_read(at, chain);
        }
    }

    /// Forces a read regardless of growth (used for the final quiescent
    /// read).
    pub fn force_read(&mut self, at: SimTime) {
        let chain = self.selected();
        self.last_read_score = (chain.len() - 1) as u64;
        self.log.record_read(at, chain);
    }

    fn insert_with_orphans(&mut self, at: SimTime, block: Block) {
        if self.tree.contains(block.id) {
            return;
        }
        if self.tree.insert(block.clone()).is_ok() {
            self.log.record_applied(at, block);
            // Drain any orphans that can now attach.
            loop {
                let mut progressed = false;
                let mut remaining = Vec::new();
                for orphan in std::mem::take(&mut self.orphans) {
                    if self.tree.contains(orphan.id) {
                        continue;
                    }
                    if self.tree.insert(orphan.clone()).is_ok() {
                        self.log.record_applied(at, orphan);
                        progressed = true;
                    } else {
                        remaining.push(orphan);
                    }
                }
                self.orphans = remaining;
                if !progressed {
                    break;
                }
            }
        } else {
            self.orphans.push(block);
        }
    }

    fn mine(&mut self, ctx: &mut Context<Msg>) {
        if self.tape.pop() != Cell::Token {
            return;
        }
        let parent = self.selected().tip().clone();
        let tx = Transaction::transfer(
            (self.id as u64) << 32 | self.next_tx,
            self.id as u32,
            ((self.id + 1) % ctx.n()) as u32,
            1,
        );
        self.next_tx += 1;
        let block = BlockBuilder::new(&parent)
            .producer(self.id as u32)
            .nonce((self.id as u64) << 32 | self.next_tx)
            .push_tx(tx)
            .build();
        let at = ctx.now();
        self.log.record_created(at, block.clone());
        self.insert_with_orphans(at, block.clone());
        self.maybe_read(at);
        ctx.broadcast(Msg::NewBlock(block));
    }
}

impl Process<Msg> for PowReplica {
    fn on_start(&mut self, ctx: &mut Context<Msg>) {
        ctx.set_timer(self.config.mine_interval, MINE_TIMER);
    }

    fn on_message(&mut self, ctx: &mut Context<Msg>, _from: usize, msg: Msg) {
        if let Msg::NewBlock(block) = msg {
            let at = ctx.now();
            if !self.tree.contains(block.id) {
                self.log.record_received(at, block.clone());
                self.insert_with_orphans(at, block);
                self.maybe_read(at);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<Msg>, timer_id: u64) {
        if timer_id != MINE_TIMER {
            return;
        }
        if ctx.now().0 <= self.config.mine_until {
            self.mine(ctx);
            ctx.set_timer(self.config.mine_interval, MINE_TIMER);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btadt_netsim::{FailurePlan, SimConfig, Simulator};
    use btadt_types::LongestChain;

    fn config(seed: u64, p: f64) -> PowConfig {
        PowConfig {
            selection: Arc::new(LongestChain::new()),
            success_probability: p,
            mine_interval: 1,
            mine_until: 40,
            seed,
        }
    }

    fn run(n: usize, seed: u64, p: f64) -> Vec<PowReplica> {
        let replicas: Vec<PowReplica> = (0..n).map(|i| PowReplica::new(i, config(seed, p))).collect();
        let sim_config = SimConfig::synchronous(seed, 3, 400);
        let mut sim = Simulator::new(replicas, sim_config, FailurePlan::none());
        sim.run();
        let (mut replicas, _) = sim.into_parts();
        for r in replicas.iter_mut() {
            r.force_read(SimTime(400));
        }
        replicas
    }

    #[test]
    fn miners_produce_blocks_and_converge_after_quiescence() {
        let replicas = run(4, 3, 0.2);
        let total_created: usize = replicas.iter().map(|r| r.log.created.len()).sum();
        assert!(total_created > 5, "expected mining activity, got {total_created}");
        // After quiescence every replica holds every block.
        let sizes: Vec<usize> = replicas.iter().map(|r| r.tree().len()).collect();
        assert!(sizes.iter().all(|&s| s == sizes[0]), "trees converged: {sizes:?}");
        // And they select the same chain.
        let tips: Vec<_> = replicas.iter().map(|r| r.selected().tip().id).collect();
        assert!(tips.iter().all(|&t| t == tips[0]), "selections converged");
    }

    #[test]
    fn concurrent_mining_creates_forks() {
        let replicas = run(6, 7, 0.3);
        let max_fork = replicas
            .iter()
            .map(|r| r.tree().max_fork_degree())
            .max()
            .unwrap();
        assert!(max_fork > 1, "expected forks under concurrent mining");
    }

    #[test]
    fn reads_are_locally_monotone() {
        let replicas = run(4, 11, 0.25);
        for r in &replicas {
            let scores: Vec<usize> = r.log.reads.iter().map(|(_, c)| c.len()).collect();
            assert!(scores.windows(2).all(|w| w[1] >= w[0]), "{scores:?}");
            assert!(!r.log.reads.is_empty());
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run(3, 5, 0.2);
        let b = run(3, 5, 0.2);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.tree().sorted_ids(), y.tree().sorted_ids());
        }
    }
}
