//! The proof-of-work flooding family (Bitcoin, Ethereum — Sections 5.1/5.2).
//!
//! Every replica mines independently: on each mining tick it pops its
//! merit-parameterised tape (the Θ_P `getToken` abstraction) and, on
//! success, chains a block to the tip of its locally selected chain, applies
//! it and floods it.  `consumeToken` always succeeds (prodigal oracle), so
//! concurrent miners create forks which the selection function — longest
//! chain for Bitcoin, GHOST for Ethereum — later resolves.
//!
//! Reads are sampled whenever a replica's selected chain grows (blockchain
//! clients expose a monotone view of the chain), plus once at the end of the
//! run; the classification driver adds that final quiescent read.

use std::sync::Arc;

use btadt_netsim::{Context, Process, SimTime};
use btadt_oracle::{Cell, Tape};
use btadt_store::{BlockStore, SimMedium, StoreConfig};
use btadt_types::{Block, BlockTree, Blockchain, SelectionFunction};

use crate::extract::ReplicaLog;
use crate::gossip::{self, GossipSync, ResponseClass, SyncStats, RETRY_TIMER, SYNC_TAIL_ROUNDS};
use crate::journal::{Journal, RecoveryMode};
use crate::messages::Msg;

const MINE_TIMER: u64 = 1;
const SYNC_TIMER: u64 = 2;

/// Configuration of a proof-of-work replica.
#[derive(Clone)]
pub struct PowConfig {
    /// Selection function (longest chain for Bitcoin, GHOST for Ethereum).
    pub selection: Arc<dyn SelectionFunction>,
    /// Per-tick probability of winning the puzzle (the merit-derived
    /// Bernoulli parameter of the replica's tape).
    pub success_probability: f64,
    /// Interval between mining attempts, in ticks.
    pub mine_interval: u64,
    /// Mining stops after this time; the run then quiesces so outstanding
    /// blocks flood everywhere.
    pub mine_until: u64,
    /// Interval between periodic anti-entropy rounds (each sends a
    /// delta-sync request to a rotating peer); `0` disables them and leaves
    /// only the orphan-triggered requests.
    pub sync_interval: u64,
    /// Seed for the replica's tape.
    pub seed: u64,
    /// What `on_rejoin` does with the replica's state after a churn window
    /// (see [`RecoveryMode`]).
    pub recovery: RecoveryMode,
}

/// A proof-of-work replica.
pub struct PowReplica {
    id: usize,
    config: PowConfig,
    tape: Tape,
    /// Local tree plus the shared orphan-repair / delta-sync machinery.
    sync: GossipSync,
    last_read_score: u64,
    next_tx: u64,
    /// Everything this replica did (read by the classification driver).
    pub log: ReplicaLog,
}

impl PowReplica {
    /// Creates a replica.
    pub fn new(id: usize, config: PowConfig) -> Self {
        let tape = Tape::new(config.seed, id as u64, config.success_probability);
        let mut sync = GossipSync::new(id);
        if config.recovery == RecoveryMode::Checkpoint {
            // Checkpoint mode persists to a durable chunked store instead of
            // the volatile WAL: seal often enough that a mid-run crash finds
            // most of the history behind a committed checkpoint.
            let store_config = StoreConfig {
                chunk_capacity: 64,
                auto_checkpoint_every: 32,
            };
            sync = sync.with_durable_store(BlockStore::create(SimMedium::new(), store_config));
        }
        PowReplica {
            id,
            config,
            tape,
            sync,
            last_read_score: 0,
            next_tx: 1,
            log: ReplicaLog::new(),
        }
    }

    /// The replica's current local BlockTree.
    pub fn tree(&self) -> &BlockTree {
        self.sync.tree()
    }

    /// Sync machinery counters (requests, retries, timeouts, recoveries).
    pub fn sync_stats(&self) -> &SyncStats {
        self.sync.stats()
    }

    /// The replica's write-ahead journal.
    pub fn journal(&self) -> &Journal {
        self.sync.journal()
    }

    /// Current incarnation (bumped on every churn rejoin).
    pub fn incarnation(&self) -> u32 {
        self.sync.incarnation()
    }

    /// The durable chunked store, when running in
    /// [`RecoveryMode::Checkpoint`].
    pub fn durable_store(&self) -> Option<&BlockStore> {
        self.sync.durable_store()
    }

    /// The chain currently selected by the replica.
    pub fn selected(&self) -> Blockchain {
        self.config.selection.select(self.sync.tree())
    }

    fn maybe_read(&mut self, at: SimTime) {
        let chain = self.selected();
        let score = (chain.len() - 1) as u64;
        if score > self.last_read_score {
            self.last_read_score = score;
            self.log.record_read(at, chain);
        }
    }

    /// Forces a read regardless of growth (used for the final quiescent
    /// read).
    pub fn force_read(&mut self, at: SimTime) {
        let chain = self.selected();
        self.last_read_score = (chain.len() - 1) as u64;
        self.log.record_read(at, chain);
    }

    fn mine(&mut self, ctx: &mut Context<Msg>) {
        if self.tape.pop() != Cell::Token {
            return;
        }
        let parent = self.selected().tip().clone();
        let block = crate::gossip::mint_block(self.id, ctx.n(), &mut self.next_tx, &parent);
        let at = ctx.now();
        self.log.record_created(at, block.clone());
        self.sync
            .insert_with_orphans(at, block.clone(), &mut self.log);
        self.maybe_read(at);
        ctx.broadcast(Msg::NewBlock(block));
    }
}

impl Process<Msg> for PowReplica {
    fn on_start(&mut self, ctx: &mut Context<Msg>) {
        ctx.set_timer(self.config.mine_interval, MINE_TIMER);
        if self.config.sync_interval > 0 {
            ctx.set_timer(self.config.sync_interval, SYNC_TIMER);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<Msg>, from: usize, msg: Msg) {
        let at = ctx.now();
        self.sync.note_alive(from, ctx.n());
        match msg {
            Msg::NewBlock(block) => {
                if !self.sync.contains(block.id) {
                    self.log.record_received(at, block.clone());
                    if !self.sync.insert_with_orphans(at, block, &mut self.log) {
                        // The block orphaned: something upstream was lost or
                        // reordered — ask its sender for the missing delta.
                        self.sync.request_delta_sync(ctx, from);
                    }
                    self.maybe_read(at);
                }
            }
            Msg::Blocks { request_id, blocks } => {
                if self.sync.classify_response(request_id, blocks.len()) == ResponseClass::Stale {
                    // Addressed to a previous incarnation of this process:
                    // ignore the payload wholesale.
                    return;
                }
                let batch_len = blocks.len();
                let batch_max = blocks.iter().map(|b| b.height).max().unwrap_or(0);
                let fresh: Vec<Block> = blocks
                    .into_iter()
                    .filter(|b| !self.sync.contains(b.id))
                    .collect();
                for block in &fresh {
                    self.log.record_received(at, block.clone());
                }
                self.sync.apply_batch(at, fresh, &mut self.log);
                self.maybe_read(at);
                self.sync.after_blocks(ctx, from, batch_len, batch_max);
            }
            Msg::SyncRequest {
                request_id,
                above_height,
            } => {
                // Always reply, even with an empty batch, so the requester
                // can clear its pending request; duplicate requests get
                // duplicate (idempotent) replies.
                let mut delta = self.sync.tree().delta_above(above_height);
                gossip::truncate_batch(&mut delta);
                ctx.send(
                    from,
                    Msg::Blocks {
                        request_id,
                        blocks: delta,
                    },
                );
            }
            Msg::Propose { .. } | Msg::Vote { .. } => {
                // Committee traffic is not part of the PoW family.
            }
        }
    }

    fn on_corrupted(&mut self, ctx: &mut Context<Msg>, from: usize) {
        // Checksum rejection: the payload is discarded, but a garbled frame
        // still proves the sender is alive.
        self.sync.note_corrupted(from, ctx.n());
    }

    fn on_timer(&mut self, ctx: &mut Context<Msg>, timer_id: u64) {
        match timer_id {
            MINE_TIMER if ctx.now().0 <= self.config.mine_until => {
                self.mine(ctx);
                ctx.set_timer(self.config.mine_interval, MINE_TIMER);
            }
            SYNC_TIMER => {
                self.sync.anti_entropy(ctx);
                let sync_until =
                    self.config.mine_until + SYNC_TAIL_ROUNDS * self.config.sync_interval;
                if ctx.now().0 <= sync_until {
                    ctx.set_timer(self.config.sync_interval, SYNC_TIMER);
                }
            }
            RETRY_TIMER => self.sync.on_retry_timer(ctx),
            _ => {}
        }
    }

    fn on_rejoin(&mut self, ctx: &mut Context<Msg>) {
        let mode = self.config.recovery;
        self.sync.note_rejoin(mode);
        self.on_start(ctx);
        if mode != RecoveryMode::Retain {
            // A recovering process catches up immediately instead of
            // waiting for its next periodic anti-entropy tick.
            self.sync.anti_entropy(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btadt_netsim::{FailurePlan, SimConfig, Simulator};
    use btadt_types::LongestChain;

    fn config(seed: u64, p: f64) -> PowConfig {
        PowConfig {
            selection: Arc::new(LongestChain::new()),
            success_probability: p,
            mine_interval: 1,
            mine_until: 40,
            sync_interval: 8,
            seed,
            recovery: RecoveryMode::default(),
        }
    }

    fn run(n: usize, seed: u64, p: f64) -> Vec<PowReplica> {
        let replicas: Vec<PowReplica> = (0..n)
            .map(|i| PowReplica::new(i, config(seed, p)))
            .collect();
        let sim_config = SimConfig::synchronous(seed, 3, 400);
        let mut sim = Simulator::new(replicas, sim_config, FailurePlan::none());
        sim.run();
        let (mut replicas, _) = sim.into_parts();
        for r in replicas.iter_mut() {
            r.force_read(SimTime(400));
        }
        replicas
    }

    #[test]
    fn miners_produce_blocks_and_converge_after_quiescence() {
        let replicas = run(4, 3, 0.2);
        let total_created: usize = replicas.iter().map(|r| r.log.created.len()).sum();
        assert!(
            total_created > 5,
            "expected mining activity, got {total_created}"
        );
        // After quiescence every replica holds every block.
        let sizes: Vec<usize> = replicas.iter().map(|r| r.tree().len()).collect();
        assert!(
            sizes.iter().all(|&s| s == sizes[0]),
            "trees converged: {sizes:?}"
        );
        // And they select the same chain.
        let tips: Vec<_> = replicas.iter().map(|r| r.selected().tip().id).collect();
        assert!(tips.iter().all(|&t| t == tips[0]), "selections converged");
    }

    #[test]
    fn concurrent_mining_creates_forks() {
        let replicas = run(6, 7, 0.3);
        let max_fork = replicas
            .iter()
            .map(|r| r.tree().max_fork_degree())
            .max()
            .unwrap();
        assert!(max_fork > 1, "expected forks under concurrent mining");
    }

    #[test]
    fn reads_are_locally_monotone() {
        let replicas = run(4, 11, 0.25);
        for r in &replicas {
            let scores: Vec<usize> = r.log.reads.iter().map(|(_, c)| c.len()).collect();
            assert!(scores.windows(2).all(|w| w[1] >= w[0]), "{scores:?}");
            assert!(!r.log.reads.is_empty());
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run(3, 5, 0.2);
        let b = run(3, 5, 0.2);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.tree().sorted_ids(), y.tree().sorted_ids());
        }
    }

    #[test]
    fn churned_replica_rejoins_and_syncs_via_delta_gossip() {
        // Replica 3 is offline during [10, 60) while the others keep mining.
        // On rejoin, `on_rejoin` restarts its timers; the next anti-entropy
        // round (and any orphan-triggered catch-up) pulls the missed blocks
        // as a delta, so by quiescence it selects the same chain.
        let replicas: Vec<PowReplica> = (0..4)
            .map(|i| PowReplica::new(i, config(17, 0.3)))
            .collect();
        let sim_config = SimConfig::synchronous(17, 3, 600);
        let plan = FailurePlan::none().with_churn(3, 10, 60);
        let mut sim = Simulator::new(replicas, sim_config, plan);
        sim.run();
        let (replicas, _) = sim.into_parts();
        let total_mined: usize = replicas.iter().map(|r| r.log.created.len()).sum();
        assert!(total_mined > 5, "expected mining activity");
        // The churned replica heard strictly less from the network first-hand…
        let tips: Vec<_> = replicas.iter().map(|r| r.selected().tip().id).collect();
        let heights: Vec<_> = replicas.iter().map(|r| r.tree().height()).collect();
        // …but delta gossip restored agreement on the selected chain.
        assert!(
            tips.iter().all(|&t| t == tips[0]),
            "churned replica re-synced: tips {tips:?}, heights {heights:?}"
        );
        assert_eq!(
            heights[3], heights[0],
            "the rejoined tree caught up in height"
        );
    }

    #[test]
    fn delta_sync_repairs_losses_under_a_lossy_channel() {
        // A dropped NewBlock used to starve its receiver permanently (the
        // creator floods each block exactly once).  With delta sync, any
        // later block arriving as an orphan triggers a catch-up request, so
        // replicas converge despite the loss.
        use btadt_netsim::ChannelModel;
        let run_lossy = |drop_probability: f64| {
            let replicas: Vec<PowReplica> = (0..4)
                .map(|i| PowReplica::new(i, config(13, 0.3)))
                .collect();
            let sim_config = SimConfig {
                seed: 13,
                channel: ChannelModel::lossy(ChannelModel::synchronous(3), drop_probability),
                max_time: 800,
                max_events: 500_000,
            };
            let mut sim = Simulator::new(replicas, sim_config, FailurePlan::none());
            sim.run();
            let (replicas, trace) = sim.into_parts();
            (replicas, trace)
        };

        let (replicas, trace) = run_lossy(0.25);
        assert!(
            trace.dropped() > 0,
            "the channel must actually lose messages"
        );
        let total_mined: usize = replicas.iter().map(|r| r.log.created.len()).sum();
        assert!(total_mined > 5, "expected mining activity");
        // Side branches a replica never heard of are irrelevant; the
        // guarantee delta sync restores is agreement on the *selected*
        // chain: every replica recovers the globally longest chain even
        // though individual floods were dropped.
        let tips: Vec<_> = replicas.iter().map(|r| r.selected().tip().id).collect();
        let heights: Vec<_> = replicas.iter().map(|r| r.tree().height()).collect();
        assert!(
            tips.iter().all(|&t| t == tips[0]),
            "delta sync reconciles lossy replicas: tips {tips:?}, heights {heights:?}"
        );
    }

    /// Replica 3 mines alone behind a partition, then crashes before the
    /// partition heals: its partition-era blocks exist nowhere else in the
    /// network.  Run the identical schedule under each recovery mode.
    fn isolated_miner_run(recovery: RecoveryMode) -> Vec<PowReplica> {
        let mut cfg = config(21, 0.3);
        cfg.mine_until = 150;
        cfg.recovery = recovery;
        let replicas: Vec<PowReplica> = (0..4).map(|i| PowReplica::new(i, cfg.clone())).collect();
        let sim_config = SimConfig::synchronous(21, 3, 600);
        let plan = FailurePlan::none()
            .with_partition(vec![3], 80, 100)
            .with_churn(3, 100, 160);
        let mut sim = Simulator::new(replicas, sim_config, plan);
        sim.run();
        let (replicas, _) = sim.into_parts();
        replicas
    }

    #[test]
    fn journal_recovery_preserves_self_mined_blocks_a_restart_loses() {
        let journaled = isolated_miner_run(RecoveryMode::Journal);
        let restarted = isolated_miner_run(RecoveryMode::Restart);
        let mined_in_isolation = |r: &PowReplica| {
            r.log
                .created
                .iter()
                .filter(|(at, _)| at.0 >= 80 && at.0 < 100)
                .map(|(_, b)| b.id)
                .collect::<Vec<_>>()
        };
        let iso_j = mined_in_isolation(&journaled[3]);
        let iso_r = mined_in_isolation(&restarted[3]);
        assert!(
            !iso_j.is_empty() && !iso_r.is_empty(),
            "the isolated window must see mining activity"
        );
        // A journaled recovery never loses a self-mined block…
        assert!(
            iso_j.iter().all(|&id| journaled[3].tree().contains(id)),
            "journal replay restored every isolated self-mined block"
        );
        assert!(journaled[3].sync_stats().replayed_blocks > 0);
        // …while a journal-less restart drops the ones nobody else holds.
        assert!(
            iso_r.iter().any(|&id| !restarted[3].tree().contains(id)),
            "restart without a journal must lose the isolated blocks"
        );
        // Both recoveries still converge with the network on the selected chain.
        for replicas in [&journaled, &restarted] {
            let tips: Vec<_> = replicas.iter().map(|r| r.selected().tip().id).collect();
            assert!(tips.iter().all(|&t| t == tips[0]), "tips {tips:?}");
        }
    }

    #[test]
    fn checkpoint_recovery_preserves_self_mined_blocks_a_restart_loses() {
        // The durable chunked store carries the same guarantee the WAL
        // does — a crash never loses a self-mined block that nobody else
        // holds — but through the full checksum-verifying recovery
        // pipeline instead of a journal replay.
        let checkpointed = isolated_miner_run(RecoveryMode::Checkpoint);
        let restarted = isolated_miner_run(RecoveryMode::Restart);
        let mined_in_isolation = |r: &PowReplica| {
            r.log
                .created
                .iter()
                .filter(|(at, _)| at.0 >= 80 && at.0 < 100)
                .map(|(_, b)| b.id)
                .collect::<Vec<_>>()
        };
        let iso_c = mined_in_isolation(&checkpointed[3]);
        let iso_r = mined_in_isolation(&restarted[3]);
        assert!(
            !iso_c.is_empty() && !iso_r.is_empty(),
            "the isolated window must see mining activity"
        );
        assert!(
            iso_c.iter().all(|&id| checkpointed[3].tree().contains(id)),
            "checkpoint recovery restored every isolated self-mined block"
        );
        assert!(
            iso_r.iter().any(|&id| !restarted[3].tree().contains(id)),
            "restart without durable storage must lose the isolated blocks"
        );
        let store = checkpointed[3].durable_store().expect("store attached");
        assert!(
            iso_c.iter().all(|&id| store.contains(id)),
            "the recovered store still holds the isolated blocks"
        );
        assert!(checkpointed[3].sync_stats().replayed_blocks > 0);
        assert_eq!(checkpointed[3].sync_stats().rejoins, 1);
        // Both recoveries still converge with the network.
        for replicas in [&checkpointed, &restarted] {
            let tips: Vec<_> = replicas.iter().map(|r| r.selected().tip().id).collect();
            assert!(tips.iter().all(|&t| t == tips[0]), "tips {tips:?}");
        }
    }

    #[test]
    fn journal_recovery_needs_strictly_fewer_sync_requests_than_full_resync() {
        let journaled = isolated_miner_run(RecoveryMode::Journal);
        let restarted = isolated_miner_run(RecoveryMode::Restart);
        let j = journaled[3].sync_stats().requests_since_rejoin();
        let r = restarted[3].sync_stats().requests_since_rejoin();
        assert_eq!(journaled[3].sync_stats().rejoins, 1);
        assert!(
            j < r,
            "journal replay must delta-sync only the gap: journal {j} vs full {r} requests"
        );
    }

    #[test]
    fn crash_during_a_partition_window_then_rejoin_stays_consistent() {
        // Regression: the crash happens *inside* the partition window, so
        // deliveries and timers queued for the pre-crash incarnation are
        // still in flight when the process returns.  The simulator-level
        // incarnation stamps discard them, the gossip-level request-id
        // incarnation bits ignore stale sync responses, and applications
        // stay exactly-once.
        for recovery in [RecoveryMode::Retain, RecoveryMode::Journal] {
            let mut cfg = config(29, 0.3);
            cfg.mine_until = 120;
            cfg.recovery = recovery;
            let replicas: Vec<PowReplica> =
                (0..4).map(|i| PowReplica::new(i, cfg.clone())).collect();
            let sim_config = SimConfig::synchronous(29, 3, 600);
            let plan = FailurePlan::none()
                .with_partition(vec![3], 20, 60)
                .with_churn(3, 30, 50);
            let mut sim = Simulator::new(replicas, sim_config, plan);
            sim.run();
            let (replicas, _) = sim.into_parts();
            for r in &replicas {
                // Exactly-once application: no block is ever applied twice.
                let mut ids: Vec<_> = r.log.applied.iter().map(|(_, b)| b.id).collect();
                let before = ids.len();
                ids.sort();
                ids.dedup();
                assert_eq!(before, ids.len(), "a block was applied twice");
            }
            let tips: Vec<_> = replicas.iter().map(|r| r.selected().tip().id).collect();
            assert!(
                tips.iter().all(|&t| t == tips[0]),
                "convergence under {recovery:?}: tips {tips:?}"
            );
            assert_eq!(replicas[3].incarnation(), 1);
        }
    }

    #[test]
    fn duplicated_sync_traffic_is_idempotent() {
        use btadt_netsim::ChannelModel;
        let replicas: Vec<PowReplica> = (0..4)
            .map(|i| PowReplica::new(i, config(31, 0.3)))
            .collect();
        let sim_config = SimConfig {
            seed: 31,
            channel: ChannelModel::faulty(ChannelModel::synchronous(3), 0.4, 0.2, 4, 0.0),
            max_time: 800,
            max_events: 500_000,
        };
        let mut sim = Simulator::new(replicas, sim_config, FailurePlan::none());
        sim.run();
        let (replicas, trace) = sim.into_parts();
        for r in &replicas {
            let mut ids: Vec<_> = r.log.applied.iter().map(|(_, b)| b.id).collect();
            let before = ids.len();
            ids.sort();
            ids.dedup();
            assert_eq!(
                before,
                ids.len(),
                "duplicated deliveries must not double-apply"
            );
        }
        assert!(trace.delivered() > trace.sent(), "duplication happened");
        let tips: Vec<_> = replicas.iter().map(|r| r.selected().tip().id).collect();
        assert!(tips.iter().all(|&t| t == tips[0]), "tips {tips:?}");
    }

    #[test]
    fn corrupted_frames_are_rejected_but_count_as_evidence_of_life() {
        use btadt_netsim::ChannelModel;
        let replicas: Vec<PowReplica> = (0..4)
            .map(|i| PowReplica::new(i, config(37, 0.3)))
            .collect();
        let sim_config = SimConfig {
            seed: 37,
            channel: ChannelModel::faulty(ChannelModel::synchronous(3), 0.0, 0.0, 1, 0.15),
            max_time: 800,
            max_events: 500_000,
        };
        let mut sim = Simulator::new(replicas, sim_config, FailurePlan::none());
        sim.run();
        let (replicas, trace) = sim.into_parts();
        assert!(trace.corrupted() > 0, "the channel must corrupt frames");
        let rejected: u64 = replicas
            .iter()
            .map(|r| r.sync_stats().corrupt_rejected)
            .sum();
        assert_eq!(rejected as usize, trace.corrupted());
        // Retry/anti-entropy repairs what corruption destroyed.
        let tips: Vec<_> = replicas.iter().map(|r| r.selected().tip().id).collect();
        assert!(tips.iter().all(|&t| t == tips[0]), "tips {tips:?}");
    }

    #[test]
    fn empty_delta_anti_entropy_rounds_clear_pending_requests() {
        // No mining at all: every anti-entropy round yields an empty batch.
        // The always-reply rule means each request still gets a response, so
        // pending requests clear and no timeouts accumulate.
        let replicas: Vec<PowReplica> = (0..3)
            .map(|i| PowReplica::new(i, config(41, 0.0)))
            .collect();
        let sim_config = SimConfig::synchronous(41, 3, 300);
        let mut sim = Simulator::new(replicas, sim_config, FailurePlan::none());
        sim.run();
        let (replicas, _) = sim.into_parts();
        for r in &replicas {
            let s = r.sync_stats();
            assert!(s.requests_sent > 0, "anti-entropy rounds ran");
            assert_eq!(s.responses, s.requests_sent, "every request was answered");
            assert_eq!(s.empty_responses, s.responses, "all batches were empty");
            assert_eq!(s.timeouts, 0, "healthy peers never time out");
        }
    }

    #[test]
    fn a_crashed_peer_is_marked_suspect_and_skipped() {
        // Replica 2 is down for most of the run; its peers' requests to it
        // time out, drive its health score below the suspicion threshold and
        // anti-entropy routes around it.  Once it rejoins and speaks again,
        // evidence of life restores it.
        let mut cfg = config(43, 0.2);
        cfg.mine_until = 200;
        let replicas: Vec<PowReplica> = (0..3).map(|i| PowReplica::new(i, cfg.clone())).collect();
        let sim_config = SimConfig::synchronous(43, 3, 900);
        let plan = FailurePlan::none().with_churn(2, 10, 400);
        let mut sim = Simulator::new(replicas, sim_config, plan);
        sim.run();
        let (replicas, _) = sim.into_parts();
        let timeouts: u64 = replicas[..2].iter().map(|r| r.sync_stats().timeouts).sum();
        let retries: u64 = replicas[..2].iter().map(|r| r.sync_stats().retries).sum();
        assert!(timeouts > 0, "requests to the dead peer must time out");
        assert!(retries > 0, "timeouts must trigger retries");
        // After rejoin + tail rounds the survivors see it alive again.
        let tips: Vec<_> = replicas.iter().map(|r| r.selected().tip().id).collect();
        assert!(tips.iter().all(|&t| t == tips[0]), "tips {tips:?}");
    }
}
