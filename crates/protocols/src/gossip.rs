//! Shared delta-sync gossip machinery for the mining replicas.
//!
//! Honest ([`PowReplica`](crate::pow::PowReplica)) and adversarial
//! ([`AdversarialMiner`](crate::adversary::AdversarialMiner)) miners repair
//! gaps the same way: orphaned blocks are buffered, a
//! [`Msg::SyncRequest`](crate::messages::Msg) asks the peer for the delta
//! above a floor, and fruitless responses halve the floor until the fork
//! point is reached.  This module holds that state machine once so the two
//! replica types cannot drift.
//!
//! # Hardened sync
//!
//! On top of the orphan-repair loop, [`GossipSync`] implements the
//! robustness layer:
//!
//! * **Request ids** — every [`Msg::SyncRequest`] carries
//!   `(incarnation << 32) | seq`.  A churn rejoin bumps the incarnation, so
//!   responses addressed to a previous life of the process are recognised
//!   and dropped ([`ResponseClass::Stale`]) instead of corrupting the
//!   rebuilt state.
//! * **Timeout / retry / backoff** — at most one sync request is in flight
//!   ([`PendingRequest`]).  A retry timer fires after an exponential
//!   backoff (base [`BASE_TIMEOUT`], doubled per attempt, plus a
//!   deterministic per-request jitter); expiry penalises the peer's health
//!   score and re-sends to the next healthy peer, up to [`MAX_ATTEMPTS`]
//!   attempts.
//! * **Peer health** — peers score +1 (clamped) on any evidence of life
//!   (message or corrupted frame received) and −1 on a request timeout.
//!   Anti-entropy skips peers below the suspicion threshold, so a crashed
//!   or partitioned peer stops absorbing sync rounds until it speaks again.
//! * **Bounded batches** — delta responses are truncated to
//!   [`MAX_SYNC_BATCH`] blocks (parents-first order is preserved by the
//!   `(height, id)` sort).  A full batch signals "more above": the
//!   requester issues a continuation strictly above the highest block it
//!   just received, so progress is guaranteed and re-sync of a long chain
//!   costs `ceil(missing / MAX_SYNC_BATCH)` rounds.
//! * **Write-ahead journal** — every applied block is appended to a
//!   [`Journal`]; [`GossipSync::crash_restart`] replays it so a recovering
//!   process only delta-syncs the gap (see [`RecoveryMode`]).  Replay is
//!   **idempotent**: already-present blocks are skipped and replay never
//!   re-journals, so a crash *during* replay followed by a second recovery
//!   ([`GossipSync::resume_replay`]) applies only the unreplayed tail and a
//!   double replay of the same WAL is a no-op.
//! * **Durable checkpoint store** — a replica built with
//!   [`GossipSync::with_durable_store`] mirrors every applied block into a
//!   `btadt-store` [`BlockStore`] (chunked, checksummed, atomically
//!   checkpointed).  [`RecoveryMode::Checkpoint`] rejoins run the store's
//!   verifying recovery pipeline instead of the WAL: torn tails are
//!   truncated, corrupt chunks quarantined, and whatever corruption cost is
//!   healed by the same delta-sync machinery that covers the churn gap.

use btadt_netsim::{Context, SimTime};
use btadt_pipeline::{stage_batch, BatchReport, IngestVerdict, StagedBatch};
use btadt_store::{BlockStore, RecoveryReport};
use btadt_types::{Block, BlockBuilder, BlockId, BlockTree, Transaction};

use crate::extract::ReplicaLog;
use crate::journal::{Journal, JournalKind, RecoveryMode};
use crate::messages::Msg;

/// How many anti-entropy rounds keep running after mining stops, so that
/// deltas lost to the channel still reconcile before quiescence.
pub(crate) const SYNC_TAIL_ROUNDS: u64 = 12;
/// Anti-entropy requests look this far below the local height so that
/// competing same-height tips (ties the selection must see to be
/// deterministic across replicas) still propagate.
pub(crate) const SYNC_LOOKBACK: u64 = 3;

/// Maximum number of blocks in one [`Msg::Blocks`] delta batch.  Responders
/// truncate with [`truncate_batch`]; requesters detect a full batch and
/// issue a continuation request above it.
pub const MAX_SYNC_BATCH: usize = 16;

/// Timer id used by the sync retry/timeout machinery.  Must stay distinct
/// from the replica-local timers (`MINE_TIMER = 1`, `SYNC_TIMER = 2`,
/// adversary `RELEASE_TIMER = 3`, committee round timer).
pub const RETRY_TIMER: u64 = 9;

/// Base request timeout in simulated ticks (first attempt).  Doubled per
/// retry attempt; chosen above the round trip of the slowest shipped
/// channel model so healthy peers practically never time out.
pub const BASE_TIMEOUT: u64 = 24;

/// Maximum send attempts (initial send + retries) for one logical sync
/// request before giving up and leaving repair to periodic anti-entropy.
pub const MAX_ATTEMPTS: u32 = 3;

/// Health score ceiling (evidence of life saturates here).
const HEALTH_MAX: i32 = 3;
/// Health score floor (repeated timeouts saturate here).
const HEALTH_MIN: i32 = -6;
/// Peers scoring below this are skipped by anti-entropy peer selection.
const HEALTH_SUSPECT: i32 = -2;

/// SplitMix64 — used only for deterministic timeout jitter.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Truncates a `(height, id)`-sorted delta batch to [`MAX_SYNC_BATCH`]
/// blocks.  Ascending height order means every kept block's parent is
/// either below the requested floor (the requester has it) or earlier in
/// the kept prefix, so truncation never manufactures orphans.
pub fn truncate_batch(blocks: &mut Vec<Block>) {
    blocks.truncate(MAX_SYNC_BATCH);
}

/// Builds the block a miner chains onto `parent`: a single transfer whose
/// id/nonce are derived from the miner id and a per-miner counter (which
/// this bumps).  Shared by honest and adversarial miners so the block
/// scheme cannot drift between them.
pub(crate) fn mint_block(id: usize, n: usize, next_tx: &mut u64, parent: &Block) -> Block {
    let tx = Transaction::transfer(
        (id as u64) << 32 | *next_tx,
        id as u32,
        ((id + 1) % n) as u32,
        1,
    );
    *next_tx += 1;
    BlockBuilder::new(parent)
        .producer(id as u32)
        .nonce((id as u64) << 32 | *next_tx)
        .push_tx(tx)
        .build()
}

/// The sync request currently in flight (at most one per replica).
#[derive(Clone, Copy, Debug)]
pub struct PendingRequest {
    /// `(incarnation << 32) | seq` — echoed by the responder.
    pub request_id: u64,
    /// Peer the request was sent to.
    pub peer: usize,
    /// Simulated time of the (re)send.
    pub sent_at: SimTime,
    /// Zero-based attempt counter (0 = initial send).
    pub attempt: u32,
    /// The floor the request asked the delta above.
    pub above_height: u64,
}

/// Counters describing the sync machinery's behaviour over a run.
#[derive(Clone, Debug, Default)]
pub struct SyncStats {
    /// Sync requests sent (initial sends and retries).
    pub requests_sent: u64,
    /// Requests re-sent after a timeout.
    pub retries: u64,
    /// Retry-timer expiries that found the pending request unanswered.
    pub timeouts: u64,
    /// Responses that matched the pending request.
    pub responses: u64,
    /// Matched responses whose batch was empty (anti-entropy no-ops).
    pub empty_responses: u64,
    /// Same-incarnation responses that no longer matched the pending
    /// request (late or duplicated); their blocks are still applied.
    pub late_responses: u64,
    /// Responses addressed to a previous incarnation; dropped entirely.
    pub stale_responses: u64,
    /// Corrupted frames rejected by the checksum model.
    pub corrupt_rejected: u64,
    /// Churn rejoins observed.
    pub rejoins: u64,
    /// Blocks restored from the journal across all recoveries.
    pub replayed_blocks: u64,
    /// Value of `requests_sent` at the most recent rejoin; the difference
    /// from the current value is the post-recovery sync cost.
    pub requests_at_last_rejoin: u64,
    /// Batches applied through the staged ingest pipeline (batches of one
    /// included — every ingest door routes through it).
    pub batches_applied: u64,
    /// Blocks newly attached by batch application.
    pub batch_accepted: u64,
    /// Blocks staged as orphans (parent unknown at staging time) and
    /// pooled for delta sync.
    pub batch_orphaned: u64,
    /// Blocks a batch recognised as already present.
    pub batch_duplicates: u64,
}

impl SyncStats {
    /// Sync requests sent since the most recent rejoin (all requests if the
    /// process never rejoined) — the "gossip rounds to recover" metric.
    pub fn requests_since_rejoin(&self) -> u64 {
        self.requests_sent - self.requests_at_last_rejoin
    }
}

/// Classification of an incoming [`Msg::Blocks`] response.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResponseClass {
    /// Matched the pending request (which is now cleared).
    Fresh,
    /// Same incarnation but not the pending request: a late, duplicated or
    /// unsolicited batch.  Blocks are applied (insertion is idempotent).
    Late,
    /// Addressed to a previous incarnation of this process; the payload
    /// must be ignored wholesale.
    Stale,
}

/// A replica's local tree plus the orphan-repair / delta-sync state.
pub struct GossipSync {
    id: usize,
    tree: BlockTree,
    orphans: Vec<Block>,
    sync_round: u64,
    /// Current delta-sync floor.  While orphans persist, each fruitless
    /// sync round halves it (a response can only carry blocks *above* the
    /// requested floor, so the floor must be pushed below the unknown fork
    /// point explicitly); it resets once the orphan buffer drains.
    sync_floor: Option<u64>,
    incarnation: u32,
    next_seq: u32,
    pending: Option<PendingRequest>,
    health: Vec<i32>,
    stats: SyncStats,
    journal: Journal,
    /// Durable chunked block store, when the replica runs in
    /// [`RecoveryMode::Checkpoint`].  Every applied block is mirrored here
    /// (deduplicated by id), and a checkpoint rejoin recovers from it.
    store: Option<BlockStore>,
    /// Report of the most recent checkpoint recovery, if any.
    last_recovery: Option<RecoveryReport>,
}

impl GossipSync {
    /// Fresh sync state for replica `id`.
    pub fn new(id: usize) -> Self {
        GossipSync {
            id,
            tree: BlockTree::new(),
            orphans: Vec::new(),
            sync_round: 0,
            sync_floor: None,
            incarnation: 0,
            next_seq: 1,
            pending: None,
            health: Vec::new(),
            stats: SyncStats::default(),
            journal: Journal::new(),
            store: None,
            last_recovery: None,
        }
    }

    /// Attaches a durable chunked block store; from now on every applied
    /// block is mirrored into it and [`RecoveryMode::Checkpoint`] rejoins
    /// recover from it.
    pub fn with_durable_store(mut self, store: BlockStore) -> Self {
        self.store = Some(store);
        self
    }

    /// The attached durable store, if any.
    pub fn durable_store(&self) -> Option<&BlockStore> {
        self.store.as_ref()
    }

    /// The report of the most recent checkpoint recovery, if one ran.
    pub fn last_recovery_report(&self) -> Option<&RecoveryReport> {
        self.last_recovery.as_ref()
    }

    /// The replica's local block tree.
    pub fn tree(&self) -> &BlockTree {
        &self.tree
    }

    /// Whether the tree already contains `id`.
    pub fn contains(&self, id: BlockId) -> bool {
        self.tree.contains(id)
    }

    /// Sync behaviour counters.
    pub fn stats(&self) -> &SyncStats {
        &self.stats
    }

    /// The write-ahead journal.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// Current incarnation (bumped on every churn rejoin).
    pub fn incarnation(&self) -> u32 {
        self.incarnation
    }

    /// Health score of `peer` (0 when unknown).
    pub fn health(&self, peer: usize) -> i32 {
        self.health.get(peer).copied().unwrap_or(0)
    }

    fn ensure_health(&mut self, n: usize) {
        if self.health.len() < n {
            self.health.resize(n, 0);
        }
    }

    /// Records evidence of life from `peer` (any received frame, including
    /// a corrupted one — a garbled message still proves the sender is up).
    pub fn note_alive(&mut self, peer: usize, n: usize) {
        self.ensure_health(n);
        if peer < self.health.len() {
            self.health[peer] = (self.health[peer] + 1).min(HEALTH_MAX);
        }
    }

    /// Records a corrupted frame from `peer`: rejected by checksum, but
    /// still evidence the peer is alive.
    pub fn note_corrupted(&mut self, peer: usize, n: usize) {
        self.stats.corrupt_rejected += 1;
        self.note_alive(peer, n);
    }

    fn note_timeout(&mut self, peer: usize, n: usize) {
        self.ensure_health(n);
        if peer < self.health.len() {
            self.health[peer] = (self.health[peer] - 1).max(HEALTH_MIN);
        }
    }

    fn is_suspect(&self, peer: usize) -> bool {
        self.health(peer) < HEALTH_SUSPECT
    }

    /// Deterministic timeout for `attempt` of `request_id`: exponential
    /// backoff plus a per-request jitter so the fleet's retries do not
    /// synchronise.
    fn timeout_for(&self, request_id: u64, attempt: u32) -> u64 {
        let backoff = BASE_TIMEOUT << attempt.min(4);
        let jitter = splitmix64((self.id as u64).rotate_left(32) ^ request_id) % (BASE_TIMEOUT / 4);
        backoff + jitter
    }

    /// First non-suspect peer at or after `start` (excluding self); falls
    /// back to `start` when every peer looks down, so probing never fully
    /// stops and recovered peers are rediscovered.
    fn pick_healthy(&self, start: usize, n: usize) -> usize {
        for k in 0..n {
            let candidate = (start + k) % n;
            if candidate == self.id {
                continue;
            }
            if !self.is_suspect(candidate) {
                return candidate;
            }
        }
        start
    }

    /// Sends a sync request for the delta above `above_height` to `peer`,
    /// replacing any pending request, and arms the retry timer.
    fn send_request(
        &mut self,
        ctx: &mut Context<Msg>,
        peer: usize,
        above_height: u64,
        attempt: u32,
    ) {
        let request_id = u64::from(self.incarnation) << 32 | u64::from(self.next_seq);
        self.next_seq += 1;
        self.pending = Some(PendingRequest {
            request_id,
            peer,
            sent_at: ctx.now(),
            attempt,
            above_height,
        });
        self.stats.requests_sent += 1;
        ctx.send(
            peer,
            Msg::SyncRequest {
                request_id,
                above_height,
            },
        );
        ctx.set_timer(self.timeout_for(request_id, attempt), RETRY_TIMER);
    }

    /// Inserts a block, draining any orphans it unblocks, recording each
    /// application in `log` and journaling it.  Returns `true` iff the
    /// block is in the tree after the call (attached now, or already
    /// present); `false` iff it was buffered as an orphan.  A batch of
    /// one through [`apply_batch`](Self::apply_batch).
    pub fn insert_with_orphans(&mut self, at: SimTime, block: Block, log: &mut ReplicaLog) -> bool {
        let report = self.apply_batch(at, vec![block], log);
        matches!(
            report.verdicts[0],
            IngestVerdict::Accepted | IngestVerdict::Duplicate
        )
    }

    /// Applies a delta batch through the staged ingest pipeline: blocks
    /// are staged against the local tree (`btadt-pipeline` stage 2), the
    /// topologically-ordered ready set is inserted — recording each
    /// application in `log` and journaling it — stage-2 orphans join the
    /// pool, and the pool is drained against the grown tree.  Returns one
    /// [`IngestVerdict`] per input block, in input order.
    pub fn apply_batch(
        &mut self,
        at: SimTime,
        blocks: Vec<Block>,
        log: &mut ReplicaLog,
    ) -> BatchReport {
        self.stats.batches_applied += 1;
        let StagedBatch {
            ready,
            orphans,
            mut verdicts,
            ..
        } = stage_batch(blocks, |id| self.tree.contains(id));
        for (pos, block) in ready {
            let verdict = match self.tree.insert(block.clone()) {
                Ok(()) => {
                    log.record_applied(at, block.clone());
                    self.journal_applied(block);
                    IngestVerdict::Accepted
                }
                // Staging resolved the parent, but the insert still
                // refused (e.g. a height inconsistency): buffer it, as the
                // single-block path always did.
                Err(_) => {
                    self.orphans.push(block);
                    IngestVerdict::Orphaned
                }
            };
            verdicts[pos] = Some(verdict);
        }
        for (_, block) in orphans {
            self.orphans.push(block);
        }
        self.drain_orphans(at, log);
        if self.orphans.is_empty() {
            self.sync_floor = None;
        }
        let report = BatchReport::from_verdicts(
            verdicts
                .into_iter()
                .map(|v| v.expect("every input position receives a verdict"))
                .collect(),
        );
        self.stats.batch_accepted += report.accepted as u64;
        self.stats.batch_orphaned += report.orphaned as u64;
        self.stats.batch_duplicates += report.duplicates as u64;
        report
    }

    /// Drains the orphan pool against the grown tree until a pass makes
    /// no progress: each pass attaches every orphan whose parent became
    /// resident, recording and journaling it.
    fn drain_orphans(&mut self, at: SimTime, log: &mut ReplicaLog) {
        loop {
            let mut progressed = false;
            let mut remaining = Vec::new();
            for orphan in std::mem::take(&mut self.orphans) {
                if self.tree.contains(orphan.id) {
                    continue;
                }
                if self.tree.insert(orphan.clone()).is_ok() {
                    log.record_applied(at, orphan.clone());
                    self.journal_applied(orphan);
                    progressed = true;
                } else {
                    remaining.push(orphan);
                }
            }
            self.orphans = remaining;
            if !progressed {
                break;
            }
        }
    }

    fn journal_applied(&mut self, block: Block) {
        // Persist before journaling: the durable store is the medium a
        // checkpoint recovery trusts, so a block must never be observable
        // in the volatile WAL without also having been handed to the
        // store.  Dedup by id — a block recovered from the store and later
        // re-applied via orphan drain must not grow a duplicate record.
        if let Some(store) = self.store.as_mut() {
            if !store.contains(block.id) {
                store.append(&block);
            }
        }
        let kind = if block.producer == self.id as u32 {
            JournalKind::Mined
        } else {
            JournalKind::Accepted
        };
        self.journal.append(kind, block);
    }

    /// Asks `peer` for the delta that can re-attach our orphans.  An orphan
    /// at height `h` is missing at least its parent at `h - 1`, and
    /// `delta_above` is strictly-above, so the floor must sit at `h - 2` for
    /// the parent to be included.  If a response surfaces still-deeper gaps,
    /// the floor-halving fallback in [`GossipSync::after_blocks`] pushes it
    /// down — bottoming out at genesis, so sync always terminates.
    pub fn request_delta_sync(&mut self, ctx: &mut Context<Msg>, peer: usize) {
        let base = self
            .orphans
            .iter()
            .map(|b| b.height)
            .min()
            .map(|h| h.saturating_sub(2))
            .unwrap_or_else(|| self.tree.height().saturating_sub(SYNC_LOOKBACK));
        let above_height = match self.sync_floor {
            Some(floor) => floor.min(base),
            None => base,
        };
        self.sync_floor = Some(above_height);
        self.send_request(ctx, peer, above_height, 0);
    }

    /// One periodic anti-entropy round: ask a rotating, non-suspect peer
    /// for the delta above our height (or above our orphan floor when gaps
    /// are known).  A request still pending from an earlier round is
    /// superseded (its response, if it ever arrives, classifies as
    /// [`ResponseClass::Late`] and is applied idempotently) — the periodic
    /// cadence must never be starved by a lost round trip.
    pub fn anti_entropy(&mut self, ctx: &mut Context<Msg>) {
        if ctx.n() < 2 {
            return;
        }
        self.ensure_health(ctx.n());
        let start = (self.id + 1 + (self.sync_round as usize % (ctx.n() - 1))) % ctx.n();
        self.sync_round += 1;
        let peer = self.pick_healthy(start, ctx.n());
        self.request_delta_sync(ctx, peer);
    }

    /// Handles a [`RETRY_TIMER`] expiry.  Timers from superseded requests
    /// are recognised (the pending request is newer than the deadline they
    /// guard) and ignored.
    pub fn on_retry_timer(&mut self, ctx: &mut Context<Msg>) {
        let Some(p) = self.pending else {
            return;
        };
        let deadline = p.sent_at.0 + self.timeout_for(p.request_id, p.attempt);
        if ctx.now().0 < deadline {
            // A stale timer armed for an earlier, already-replaced request.
            return;
        }
        self.stats.timeouts += 1;
        self.note_timeout(p.peer, ctx.n());
        if p.attempt + 1 >= MAX_ATTEMPTS {
            // Give up; the next periodic anti-entropy round starts over.
            self.pending = None;
            return;
        }
        self.stats.retries += 1;
        let peer = self.pick_healthy((p.peer + 1) % ctx.n(), ctx.n());
        self.send_request(ctx, peer, p.above_height, p.attempt + 1);
    }

    /// Classifies an incoming response by its echoed `request_id`, updating
    /// pending state and counters.  `batch_len` is the response's batch
    /// size (for the empty-response counter).
    pub fn classify_response(&mut self, request_id: u64, batch_len: usize) -> ResponseClass {
        if request_id == 0 {
            // Unsolicited batch (e.g. flood assistance); nothing to clear.
            return ResponseClass::Late;
        }
        if request_id >> 32 != u64::from(self.incarnation) {
            self.stats.stale_responses += 1;
            return ResponseClass::Stale;
        }
        match self.pending {
            Some(p) if p.request_id == request_id => {
                self.pending = None;
                self.stats.responses += 1;
                if batch_len == 0 {
                    self.stats.empty_responses += 1;
                }
                ResponseClass::Fresh
            }
            _ => {
                self.stats.late_responses += 1;
                ResponseClass::Late
            }
        }
    }

    /// Follow-up after handling a [`Msg::Blocks`] batch.  If orphans
    /// remain, the delta was not deep enough to reach the fork point: halve
    /// the floor (a response never carries blocks below the floor it
    /// answered, so orphan heights alone cannot push it down) and ask
    /// again.  Once the floor has bottomed out at 0 this peer has already
    /// sent its whole tree — stop re-asking it (the periodic anti-entropy
    /// rotates to other peers), otherwise two replicas would ping-pong
    /// full-tree payloads for the rest of the run.  With no orphans, a full
    /// batch means the responder truncated: continue strictly above the
    /// highest block received, which grows every round, so a full re-sync
    /// terminates in `ceil(missing / MAX_SYNC_BATCH)` rounds.
    pub fn after_blocks(
        &mut self,
        ctx: &mut Context<Msg>,
        from: usize,
        batch_len: usize,
        batch_max_height: u64,
    ) {
        if !self.orphans.is_empty() {
            if batch_len >= MAX_SYNC_BATCH {
                // The batch was truncated, so it proves nothing about the
                // blocks above its end — the missing ancestry may sit in
                // the cut-off region (a capped batch over a deep gap fills
                // up with blocks the requester already has).  Walk upward
                // from the truncation point; `batch_max_height` strictly
                // grows each round, so the walk terminates.
                self.sync_floor = Some(batch_max_height);
                self.send_request(ctx, from, batch_max_height, 0);
                return;
            }
            // A non-full batch is complete coverage above the floor, so the
            // fork point must lie below it: halve the floor (orphan heights
            // alone cannot push it down) and ask again.
            let floor = self.sync_floor.unwrap_or_else(|| self.tree.height());
            if floor > 0 {
                self.sync_floor = Some(floor / 2);
                self.request_delta_sync(ctx, from);
            }
            return;
        }
        if batch_len >= MAX_SYNC_BATCH {
            self.send_request(ctx, from, batch_max_height, 0);
        }
    }

    /// Records a churn rejoin: bumps the incarnation (so in-flight
    /// responses to the previous life classify as [`ResponseClass::Stale`]),
    /// clears the pending request, and applies the recovery mode.  Returns
    /// the number of blocks replayed from the journal.
    pub fn note_rejoin(&mut self, mode: RecoveryMode) -> usize {
        self.stats.rejoins += 1;
        self.stats.requests_at_last_rejoin = self.stats.requests_sent;
        self.incarnation += 1;
        self.pending = None;
        match mode {
            RecoveryMode::Retain => 0,
            RecoveryMode::Restart => self.crash_restart(false),
            RecoveryMode::Journal => self.crash_restart(true),
            RecoveryMode::Checkpoint => self.crash_recover_checkpoint(),
        }
    }

    /// Wipes all volatile state (tree, orphans, sync floor, pending
    /// request, peer health) — what any flavour of crash loses.
    fn wipe_volatile(&mut self) {
        self.tree = BlockTree::new();
        self.orphans.clear();
        self.sync_floor = None;
        self.pending = None;
        self.health.clear();
    }

    /// Replays up to `limit` journal entries (all of them when `None`) into
    /// the current tree, in sequence order.  Replay is **idempotent**:
    /// blocks already in the tree are skipped, and nothing is re-journaled
    /// — so replaying the same WAL twice is a no-op, and a replay
    /// interrupted mid-way can simply be run again.  Replay bypasses the
    /// replica log (those applications were recorded before the crash).
    /// Returns the number of blocks newly applied.
    fn replay_journal(&mut self, limit: Option<usize>) -> usize {
        let take = limit.unwrap_or(self.journal.len());
        let blocks: Vec<Block> = self.journal.blocks().take(take).cloned().collect();
        let mut replayed = 0usize;
        for block in blocks {
            if !self.tree.contains(block.id) && self.tree.insert(block).is_ok() {
                replayed += 1;
            }
        }
        self.stats.replayed_blocks += replayed as u64;
        replayed
    }

    /// Simulates a crash-restart: all volatile state (tree, orphans, sync
    /// floor, peer health) is wiped.  With `replay`, the write-ahead
    /// journal — the durable part of the process — is replayed first, in
    /// sequence order, rebuilding the pre-crash tree; without it the
    /// journal is lost too and the tree restarts from genesis.  Returns the
    /// number of blocks replayed.
    pub fn crash_restart(&mut self, replay: bool) -> usize {
        self.wipe_volatile();
        if replay {
            self.replay_journal(None)
        } else {
            self.journal.clear();
            0
        }
    }

    /// Simulates a crash that strikes *again* in the middle of journal
    /// replay: volatile state is wiped and only the first `after` WAL
    /// entries are applied before the process dies once more.  The journal
    /// itself — durable storage — is untouched, so a subsequent
    /// [`GossipSync::resume_replay`] (or full [`GossipSync::crash_restart`])
    /// completes the recovery.  Returns the number of blocks applied before
    /// the second crash.
    pub fn crash_restart_interrupted(&mut self, after: usize) -> usize {
        self.wipe_volatile();
        self.replay_journal(Some(after))
    }

    /// Re-runs a full journal replay over the *current* tree without wiping
    /// anything — how a process recovering from a crash-during-replay picks
    /// up where the interrupted replay left off.  Because replay is
    /// idempotent, the already-applied prefix contributes nothing and only
    /// the unreplayed tail counts.  Returns the number of blocks newly
    /// applied.
    pub fn resume_replay(&mut self) -> usize {
        self.replay_journal(None)
    }

    /// Simulates a crash-recovery from the durable chunked store: volatile
    /// state *and* the volatile WAL are wiped (in checkpoint mode the store
    /// is the durable medium, not the journal), the store's verifying
    /// recovery pipeline runs (truncating torn tails, quarantining corrupt
    /// chunks), and the surviving blocks are re-inserted parents-first.
    /// Survivors whose ancestry was lost to corruption are buffered as
    /// orphans so the ordinary delta-sync machinery heals the gap.  Without
    /// an attached store this degrades to a bare restart.  Returns the
    /// number of blocks restored from the store.
    pub fn crash_recover_checkpoint(&mut self) -> usize {
        self.wipe_volatile();
        self.journal.clear();
        let Some(store) = self.store.take() else {
            return 0;
        };
        let config = store.config();
        let (recovered, report, mut survivors) = BlockStore::recover(store.into_medium(), config);
        self.last_recovery = Some(report);
        self.store = Some(recovered);
        survivors.sort_by_key(|b| (b.height, b.id));
        let mut restored = 0usize;
        for block in survivors {
            if self.tree.contains(block.id) {
                continue;
            }
            if self.tree.insert(block.clone()).is_ok() {
                restored += 1;
            } else {
                // Ancestry lost to corruption: buffer so delta sync can
                // re-attach it once the gap is fetched from a peer.
                self.orphans.push(block);
            }
        }
        self.stats.replayed_blocks += restored as u64;
        restored
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncate_batch_caps_at_max_sync_batch() {
        let genesis = Block::genesis();
        let mut parent = genesis.clone();
        let mut blocks = Vec::new();
        for nonce in 0..(MAX_SYNC_BATCH as u64 + 5) {
            let b = BlockBuilder::new(&parent).nonce(nonce).build();
            parent = b.clone();
            blocks.push(b);
        }
        truncate_batch(&mut blocks);
        assert_eq!(blocks.len(), MAX_SYNC_BATCH);
    }

    #[test]
    fn classify_response_distinguishes_fresh_late_and_stale() {
        let mut sync = GossipSync::new(0);
        // Forge a pending request without a Context by driving the fields
        // the way send_request would.
        sync.pending = Some(PendingRequest {
            request_id: 5,
            peer: 1,
            sent_at: SimTime(0),
            attempt: 0,
            above_height: 0,
        });
        assert_eq!(sync.classify_response(5, 0), ResponseClass::Fresh);
        assert!(sync.pending.is_none());
        assert_eq!(sync.stats().responses, 1);
        assert_eq!(sync.stats().empty_responses, 1);
        // Same incarnation (0), no pending: late.
        assert_eq!(sync.classify_response(6, 2), ResponseClass::Late);
        assert_eq!(sync.stats().late_responses, 1);
        // Unsolicited id 0 is always late-class (applied, nothing cleared).
        assert_eq!(sync.classify_response(0, 1), ResponseClass::Late);
        // Bump incarnation: ids minted before the rejoin become stale.
        sync.note_rejoin(RecoveryMode::Retain);
        assert_eq!(sync.classify_response(7, 1), ResponseClass::Stale);
        assert_eq!(sync.stats().stale_responses, 1);
    }

    #[test]
    fn crash_restart_replays_journal_in_order() {
        let mut sync = GossipSync::new(0);
        let mut log = ReplicaLog::new();
        let genesis = Block::genesis();
        let a = BlockBuilder::new(&genesis).producer(0).nonce(1).build();
        let b = BlockBuilder::new(&a).producer(7).nonce(2).build();
        assert!(sync.insert_with_orphans(SimTime(1), a.clone(), &mut log));
        assert!(sync.insert_with_orphans(SimTime(2), b.clone(), &mut log));
        assert_eq!(sync.journal().len(), 2);
        assert_eq!(sync.journal().mined().count(), 1);

        let replayed = sync.crash_restart(true);
        assert_eq!(replayed, 2);
        assert!(sync.contains(a.id));
        assert!(sync.contains(b.id));
        // Journal survives a replayed restart (it is the durable medium).
        assert_eq!(sync.journal().len(), 2);

        let lost = sync.crash_restart(false);
        assert_eq!(lost, 0);
        assert!(!sync.contains(a.id));
        assert!(sync.journal().is_empty());
    }

    #[test]
    fn apply_batch_stages_orphans_and_counts_verdicts() {
        let mut sync = GossipSync::new(0);
        let mut log = ReplicaLog::new();
        let genesis = Block::genesis();
        let a = BlockBuilder::new(&genesis).nonce(1).build();
        let b = BlockBuilder::new(&a).nonce(2).build();
        let c = BlockBuilder::new(&b).nonce(3).build();
        let d = BlockBuilder::new(&c).nonce(4).build();

        // Shuffled batch missing c: b and a stage ready (topologically
        // reordered), d pools as a stage-2 orphan.
        let report = sync.apply_batch(SimTime(1), vec![b.clone(), d.clone(), a.clone()], &mut log);
        assert_eq!(
            report.verdicts,
            vec![
                IngestVerdict::Accepted,
                IngestVerdict::Orphaned,
                IngestVerdict::Accepted,
            ]
        );
        assert!(sync.contains(a.id) && sync.contains(b.id));
        assert!(!sync.contains(d.id));
        assert_eq!(sync.orphans.len(), 1);

        // Healing batch: c attaches and the drain pulls d in behind it;
        // re-offering a is a duplicate, not an error.
        let report = sync.apply_batch(SimTime(2), vec![c.clone(), a.clone()], &mut log);
        assert_eq!(
            report.verdicts,
            vec![IngestVerdict::Accepted, IngestVerdict::Duplicate]
        );
        assert!(sync.contains(d.id));
        assert!(sync.orphans.is_empty());

        let stats = sync.stats();
        assert_eq!(stats.batches_applied, 2);
        assert_eq!(stats.batch_accepted, 3);
        assert_eq!(stats.batch_orphaned, 1);
        assert_eq!(stats.batch_duplicates, 1);
        // Every applied block hit the journal exactly once.
        assert_eq!(sync.journal().len(), 4);
    }

    #[test]
    fn a_crash_during_replay_recovers_by_replaying_again() {
        // Satellite regression: the WAL replay must be idempotent, so a
        // process that crashes *during* journal replay recovers by simply
        // replaying the whole journal once more — the already-applied
        // prefix is a no-op and only the tail counts.
        let mut sync = GossipSync::new(0);
        let mut log = ReplicaLog::new();
        let genesis = Block::genesis();
        let a = BlockBuilder::new(&genesis).producer(0).nonce(1).build();
        let b = BlockBuilder::new(&a).producer(1).nonce(2).build();
        let c = BlockBuilder::new(&b).producer(2).nonce(3).build();
        for (t, block) in [&a, &b, &c].into_iter().enumerate() {
            assert!(sync.insert_with_orphans(SimTime(t as u64), block.clone(), &mut log));
        }
        assert_eq!(sync.journal().len(), 3);

        // First crash; replay dies after 2 of the 3 entries.
        let partial = sync.crash_restart_interrupted(2);
        assert_eq!(partial, 2);
        assert!(sync.contains(b.id) && !sync.contains(c.id));
        assert_eq!(sync.journal().len(), 3, "the WAL itself is durable");

        // Second recovery: full replay over the half-restored tree.
        let resumed = sync.resume_replay();
        assert_eq!(resumed, 1, "only the unreplayed tail applies");
        assert!(sync.contains(c.id));

        // Replaying the same WAL twice is a no-op.
        assert_eq!(sync.resume_replay(), 0);
        assert_eq!(sync.journal().len(), 3, "replay never re-journals");
        assert_eq!(sync.stats().replayed_blocks, 3);

        // The full crash_restart path is equally idempotent.
        assert_eq!(sync.crash_restart(true), 3);
        assert_eq!(sync.crash_restart(true), 3);
        assert_eq!(sync.journal().len(), 3);
    }

    #[test]
    fn checkpoint_recovery_restores_from_the_durable_store() {
        use btadt_store::{SimMedium, StoreConfig};
        let store = BlockStore::create(SimMedium::new(), StoreConfig::small());
        let mut sync = GossipSync::new(0).with_durable_store(store);
        let mut log = ReplicaLog::new();
        let genesis = Block::genesis();
        let mut parent = genesis.clone();
        let mut blocks = Vec::new();
        for nonce in 1..=20u64 {
            let b = BlockBuilder::new(&parent).producer(0).nonce(nonce).build();
            parent = b.clone();
            assert!(sync.insert_with_orphans(SimTime(nonce), b.clone(), &mut log));
            blocks.push(b);
        }
        assert_eq!(sync.durable_store().unwrap().blocks().len(), 20);

        let restored = sync.note_rejoin(RecoveryMode::Checkpoint);
        assert_eq!(restored, 20, "every durable block comes back");
        for b in &blocks {
            assert!(sync.contains(b.id));
        }
        let report = sync.last_recovery_report().expect("recovery ran");
        assert_eq!(report.blocks_recovered, 20);
        assert!(
            sync.journal().is_empty(),
            "in checkpoint mode the WAL is volatile and dies with the crash"
        );
        // The recovered store keeps mirroring: a fresh apply is persisted,
        // and re-applying a recovered block does not duplicate its record.
        let next = BlockBuilder::new(&parent).producer(0).nonce(99).build();
        assert!(sync.insert_with_orphans(SimTime(99), next.clone(), &mut log));
        assert!(sync.durable_store().unwrap().contains(next.id));
        assert_eq!(sync.durable_store().unwrap().blocks().len(), 21);
    }

    #[test]
    fn checkpoint_recovery_buffers_corruption_gaps_as_orphans() {
        use btadt_store::{SimMedium, StoreConfig};
        let store = BlockStore::create(SimMedium::new(), StoreConfig::small());
        let mut sync = GossipSync::new(0).with_durable_store(store);
        let mut log = ReplicaLog::new();
        let genesis = Block::genesis();
        let mut parent = genesis.clone();
        for nonce in 1..=20u64 {
            let b = BlockBuilder::new(&parent).producer(0).nonce(nonce).build();
            parent = b.clone();
            sync.insert_with_orphans(SimTime(nonce), b, &mut log);
        }
        // Flip a bit inside the first sealed chunk: recovery quarantines
        // the chunk, losing mid-chain ancestry, so the surviving upper
        // blocks cannot attach and must wait for delta sync.
        let medium = sync.store.as_mut().unwrap().medium_mut();
        let chunk = medium
            .list()
            .into_iter()
            .find(|f| f.starts_with("chunk-"))
            .expect("a sealed chunk exists");
        assert!(medium.corrupt_bit(&chunk, 40));

        let restored = sync.note_rejoin(RecoveryMode::Checkpoint);
        let report = *sync.last_recovery_report().expect("recovery ran");
        assert!(report.chunks_quarantined >= 1, "{report:?}");
        assert!(restored < 20, "the quarantined chunk cost blocks");
        assert!(
            !sync.orphans.is_empty(),
            "survivors above the gap wait as orphans for delta sync"
        );
        assert!(restored + sync.orphans.len() <= 20);
    }

    #[test]
    fn health_scores_clamp_and_gate_suspicion() {
        let mut sync = GossipSync::new(0);
        for _ in 0..10 {
            sync.note_alive(1, 4);
        }
        assert_eq!(sync.health(1), HEALTH_MAX);
        for _ in 0..10 {
            sync.note_timeout(1, 4);
        }
        assert_eq!(sync.health(1), HEALTH_MIN);
        assert!(sync.is_suspect(1));
        // pick_healthy skips the suspect peer 1 starting from it.
        assert_eq!(sync.pick_healthy(1, 4), 2);
        // Evidence of life climbs back toward healthy.
        for _ in 0..5 {
            sync.note_alive(1, 4);
        }
        assert!(!sync.is_suspect(1));
    }

    #[test]
    fn timeout_backoff_grows_and_jitter_is_deterministic() {
        let sync = GossipSync::new(3);
        let t0 = sync.timeout_for(42, 0);
        let t1 = sync.timeout_for(42, 1);
        let t2 = sync.timeout_for(42, 2);
        assert!((BASE_TIMEOUT..BASE_TIMEOUT + BASE_TIMEOUT / 4).contains(&t0));
        assert!(t1 >= 2 * BASE_TIMEOUT);
        assert!(t2 >= 4 * BASE_TIMEOUT);
        assert_eq!(t0, sync.timeout_for(42, 0));
        // Different requests jitter differently (with overwhelming odds for
        // these two fixed ids).
        assert_ne!(
            sync.timeout_for(42, 0) % BASE_TIMEOUT,
            sync.timeout_for(43, 0) % BASE_TIMEOUT
        );
    }
}
