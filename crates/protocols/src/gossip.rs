//! Shared delta-sync gossip machinery for the mining replicas.
//!
//! Honest ([`PowReplica`](crate::pow::PowReplica)) and adversarial
//! ([`AdversarialMiner`](crate::adversary::AdversarialMiner)) miners repair
//! gaps the same way: orphaned blocks are buffered, a
//! [`Msg::SyncRequest`](crate::messages::Msg) asks the peer for the delta
//! above a floor, and fruitless responses halve the floor until the fork
//! point is reached.  This module holds that state machine once so the two
//! replica types cannot drift.

use btadt_netsim::{Context, SimTime};
use btadt_types::{Block, BlockBuilder, BlockId, BlockTree, Transaction};

use crate::extract::ReplicaLog;
use crate::messages::Msg;

/// How many anti-entropy rounds keep running after mining stops, so that
/// deltas lost to the channel still reconcile before quiescence.
pub(crate) const SYNC_TAIL_ROUNDS: u64 = 12;
/// Anti-entropy requests look this far below the local height so that
/// competing same-height tips (ties the selection must see to be
/// deterministic across replicas) still propagate.
pub(crate) const SYNC_LOOKBACK: u64 = 3;

/// Builds the block a miner chains onto `parent`: a single transfer whose
/// id/nonce are derived from the miner id and a per-miner counter (which
/// this bumps).  Shared by honest and adversarial miners so the block
/// scheme cannot drift between them.
pub(crate) fn mint_block(id: usize, n: usize, next_tx: &mut u64, parent: &Block) -> Block {
    let tx = Transaction::transfer(
        (id as u64) << 32 | *next_tx,
        id as u32,
        ((id + 1) % n) as u32,
        1,
    );
    *next_tx += 1;
    BlockBuilder::new(parent)
        .producer(id as u32)
        .nonce((id as u64) << 32 | *next_tx)
        .push_tx(tx)
        .build()
}

/// A replica's local tree plus the orphan-repair / delta-sync state.
pub(crate) struct GossipSync {
    id: usize,
    tree: BlockTree,
    orphans: Vec<Block>,
    sync_round: u64,
    /// Current delta-sync floor.  While orphans persist, each fruitless
    /// sync round halves it (a response can only carry blocks *above* the
    /// requested floor, so the floor must be pushed below the unknown fork
    /// point explicitly); it resets once the orphan buffer drains.
    sync_floor: Option<u64>,
}

impl GossipSync {
    pub(crate) fn new(id: usize) -> Self {
        GossipSync {
            id,
            tree: BlockTree::new(),
            orphans: Vec::new(),
            sync_round: 0,
            sync_floor: None,
        }
    }

    pub(crate) fn tree(&self) -> &BlockTree {
        &self.tree
    }

    pub(crate) fn contains(&self, id: BlockId) -> bool {
        self.tree.contains(id)
    }

    /// Inserts a block, draining any orphans it unblocks and recording each
    /// application in `log`.  Returns `true` iff the block is in the tree
    /// after the call (attached now, or already present); `false` iff it
    /// was buffered as an orphan.
    pub(crate) fn insert_with_orphans(
        &mut self,
        at: SimTime,
        block: Block,
        log: &mut ReplicaLog,
    ) -> bool {
        if self.tree.contains(block.id) {
            return true;
        }
        if self.tree.insert(block.clone()).is_ok() {
            log.record_applied(at, block);
            // Drain any orphans that can now attach.
            loop {
                let mut progressed = false;
                let mut remaining = Vec::new();
                for orphan in std::mem::take(&mut self.orphans) {
                    if self.tree.contains(orphan.id) {
                        continue;
                    }
                    if self.tree.insert(orphan.clone()).is_ok() {
                        log.record_applied(at, orphan);
                        progressed = true;
                    } else {
                        remaining.push(orphan);
                    }
                }
                self.orphans = remaining;
                if !progressed {
                    break;
                }
            }
            if self.orphans.is_empty() {
                self.sync_floor = None;
            }
            true
        } else {
            self.orphans.push(block);
            false
        }
    }

    /// Asks `peer` for the delta that can re-attach our orphans.  An orphan
    /// at height `h` is missing at least its parent at `h - 1`, and
    /// `delta_above` is strictly-above, so the floor must sit at `h - 2` for
    /// the parent to be included.  If a response surfaces still-deeper gaps,
    /// the floor-halving fallback in [`GossipSync::after_blocks`] pushes it
    /// down — bottoming out at genesis, so sync always terminates.
    pub(crate) fn request_delta_sync(&mut self, ctx: &mut Context<Msg>, peer: usize) {
        let base = self
            .orphans
            .iter()
            .map(|b| b.height)
            .min()
            .map(|h| h.saturating_sub(2))
            .unwrap_or_else(|| self.tree.height().saturating_sub(SYNC_LOOKBACK));
        let above_height = match self.sync_floor {
            Some(floor) => floor.min(base),
            None => base,
        };
        self.sync_floor = Some(above_height);
        ctx.send(peer, Msg::SyncRequest { above_height });
    }

    /// One periodic anti-entropy round: ask a rotating peer for the delta
    /// above our height (or above our orphan floor when gaps are known).
    pub(crate) fn anti_entropy(&mut self, ctx: &mut Context<Msg>) {
        if ctx.n() < 2 {
            return;
        }
        let peer = (self.id + 1 + (self.sync_round as usize % (ctx.n() - 1))) % ctx.n();
        self.sync_round += 1;
        self.request_delta_sync(ctx, peer);
    }

    /// Follow-up after handling a [`Msg::Blocks`] batch.  If orphans
    /// remain, the delta was not deep enough to reach the fork point: halve
    /// the floor (a response never carries blocks below the floor it
    /// answered, so orphan heights alone cannot push it down) and ask
    /// again.  Once the floor has bottomed out at 0 this peer has already
    /// sent its whole tree — stop re-asking it (the periodic anti-entropy
    /// rotates to other peers), otherwise two replicas would ping-pong
    /// full-tree payloads for the rest of the run.
    pub(crate) fn after_blocks(&mut self, ctx: &mut Context<Msg>, from: usize) {
        if self.orphans.is_empty() {
            return;
        }
        let floor = self.sync_floor.unwrap_or_else(|| self.tree.height());
        if floor > 0 {
            self.sync_floor = Some(floor / 2);
            self.request_delta_sync(ctx, from);
        }
    }
}
